//! Deterministic fault-campaign runs.
//!
//! [`run_campaign`] trains a small synthetic data-parallel model on the
//! configured mesh while a [`FaultDriver`] replays the plan's faults at
//! step boundaries (the granularity at which a real control plane detects
//! them). Everything — the model, the gradients, the fault schedule, the
//! network — is deterministic, so a campaign is an experiment that can be
//! re-run to byte-identical traces.

use std::sync::Arc;

use serde::Serialize;

use multipod_collectives::CollectiveError;
use multipod_core::trainer::{DataParallelTrainer, FaultPolicy};
use multipod_optim::{LrSchedule, SgdMomentum};
use multipod_simnet::SimTime;
use multipod_tensor::{Shape, Tensor, TensorRng};
use multipod_topology::MultipodConfig;
use multipod_trace::{SpanCategory, SpanEvent, TraceSink, Track};

use crate::driver::FaultDriver;
use crate::plan::FaultPlan;

/// What to train while the faults land.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// The machine.
    pub mesh: MultipodConfig,
    /// Number of training steps.
    pub steps: u64,
    /// Gradient/weight payload size in elements; must divide evenly
    /// across the replica count.
    pub elems: usize,
    /// Constant learning rate for the synthetic quadratic objective.
    pub lr: f32,
    /// Healthy per-step host compute time; stragglers multiply this.
    pub host_seconds_per_step: f64,
    /// Quantize gradient payloads to bf16 on the wire.
    pub bf16_gradients: bool,
    /// Retry/backoff policy handed to the trainer.
    pub fault_policy: FaultPolicy,
    /// Seed for the synthetic target weights.
    pub seed: u64,
}

impl CampaignConfig {
    /// A small canned campaign on `mesh`: 8 steps of a quadratic
    /// objective with one weight element per replica (the smallest
    /// payload that shards evenly at any scale).
    pub fn demo(mesh: MultipodConfig) -> CampaignConfig {
        let replicas = (mesh.pods * mesh.pod_x_len * mesh.pod_y_len) as usize;
        CampaignConfig {
            mesh,
            steps: 8,
            elems: replicas,
            lr: 0.05,
            host_seconds_per_step: 1e-3,
            bf16_gradients: false,
            fault_policy: FaultPolicy::default(),
            seed: 17,
        }
    }
}

/// One step of a campaign run.
#[derive(Clone, Debug, Serialize)]
pub struct StepReport {
    /// Step ordinal (1-based, as reported by the trainer).
    pub step: u64,
    /// Campaign time when the step began.
    pub start_seconds: f64,
    /// Wall time of the step: `max(comm, compute × slowdown)`.
    pub step_seconds: f64,
    /// Simulated communication time, including retry backoff.
    pub comm_seconds: f64,
    /// Host compute time after straggler slowdown.
    pub compute_seconds: f64,
    /// Preflight retries the trainer needed.
    pub retries: u32,
    /// Replicas dropped so far.
    pub dead_replicas: usize,
    /// Whether the step ran over detours or a survivor ring.
    pub degraded: bool,
    /// Mean-squared distance to the synthetic target after the step.
    pub loss: f64,
}

/// The outcome of a whole campaign.
#[derive(Clone, Debug, Serialize)]
pub struct CampaignReport {
    /// Per-step reports, in order.
    pub steps: Vec<StepReport>,
    /// Total simulated campaign time.
    pub total_seconds: f64,
    /// Loss after the final step.
    pub final_loss: f64,
    /// How many steps ran degraded.
    pub degraded_steps: usize,
}

impl CampaignReport {
    /// Mean step time over steps flagged degraded (`None` when none were).
    pub fn mean_degraded_step_seconds(&self) -> Option<f64> {
        mean(self.steps.iter().filter(|s| s.degraded))
    }

    /// Mean step time over fault-free steps (`None` when all degraded).
    pub fn mean_clean_step_seconds(&self) -> Option<f64> {
        mean(self.steps.iter().filter(|s| !s.degraded))
    }
}

fn mean<'a>(steps: impl Iterator<Item = &'a StepReport>) -> Option<f64> {
    let (mut sum, mut count) = (0.0, 0usize);
    for s in steps {
        sum += s.step_seconds;
        count += 1;
    }
    (count > 0).then(|| sum / count as f64)
}

/// Runs `plan` against a training loop described by `config`, recording
/// spans on `sink` when one is given.
///
/// Faults apply at step boundaries: before each step, every plan event
/// whose time has passed is applied to the network; the trainer then
/// detects and absorbs the damage (detours, replica loss, retries). The
/// synthetic objective is `‖w − target‖²`, whose gradient depends only on
/// `w`, so two campaigns differing merely in *timing* faults (outages
/// with detours, stragglers) produce bit-identical weights and losses.
///
/// # Errors
///
/// Propagates trainer errors, e.g. when the mesh stays unroutable past
/// the retry budget or the payload does not shard evenly.
pub fn run_campaign(
    config: &CampaignConfig,
    plan: &FaultPlan,
    sink: Option<Arc<dyn TraceSink>>,
) -> Result<CampaignReport, CollectiveError> {
    let mut trainer = DataParallelTrainer::new(
        config.mesh.clone(),
        SgdMomentum::new(1.0, 0.0),
        LrSchedule::Constant { lr: config.lr },
    )
    .with_fault_policy(config.fault_policy);
    if config.bf16_gradients {
        trainer = trainer.with_bf16_gradients();
    }
    if let Some(sink) = sink.clone() {
        trainer.set_trace_sink(sink);
    }
    let n = trainer.replicas();
    let mut rng = TensorRng::seed(config.seed);
    let target = rng.uniform(Shape::vector(config.elems), -1.0, 1.0);
    let mut w = Tensor::zeros(Shape::vector(config.elems));

    let mut driver = FaultDriver::new(plan.clone());
    let mut now = SimTime::ZERO;
    let mut steps = Vec::with_capacity(config.steps as usize);
    for _ in 0..config.steps {
        driver.advance(trainer.network_mut(), now);
        // Gradient of ‖w − target‖²/2, split evenly across replicas.
        let grad = w.sub(&target)?.scale(1.0 / n as f32);
        let grads = vec![grad; n];
        let stats = trainer.step(&mut w, &grads)?;
        let slowdown = driver.max_slowdown();
        let compute_seconds = config.host_seconds_per_step * slowdown;
        let step_seconds = stats.comm_seconds.max(compute_seconds);
        let end = now + step_seconds;
        if let Some(sink) = &sink {
            sink.record_span(
                SpanEvent::new(Track::Sim, SpanCategory::Step, "campaign-step", now, end)
                    .with_arg("step", stats.step as f64)
                    .with_arg("retries", f64::from(stats.retries))
                    .with_arg("dead_replicas", stats.dead_replicas as f64)
                    .with_arg("degraded", f64::from(u8::from(stats.degraded))),
            );
            for (host, s) in driver.active_stragglers() {
                sink.record_span(
                    SpanEvent::new(
                        Track::Host { host },
                        SpanCategory::Fault,
                        "straggler-window",
                        now,
                        end,
                    )
                    .with_arg("slowdown", s),
                );
            }
        }
        let loss = {
            let err = w.sub(&target)?;
            let norm = f64::from(err.norm2());
            norm * norm / config.elems as f64
        };
        steps.push(StepReport {
            step: stats.step,
            start_seconds: now.seconds(),
            step_seconds,
            comm_seconds: stats.comm_seconds,
            compute_seconds,
            retries: stats.retries,
            dead_replicas: stats.dead_replicas,
            degraded: stats.degraded || slowdown > 1.0,
            loss,
        });
        now = end;
    }
    Ok(CampaignReport {
        total_seconds: now.seconds(),
        final_loss: steps.last().map_or(f64::INFINITY, |s| s.loss),
        degraded_steps: steps.iter().filter(|s| s.degraded).count(),
        steps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_campaign_learns_and_reports() {
        let config = CampaignConfig::demo(MultipodConfig::mesh(4, 4, true));
        let report = run_campaign(&config, &FaultPlan::new(), None).unwrap();
        assert_eq!(report.steps.len(), 8);
        assert_eq!(report.degraded_steps, 0);
        assert!(report.final_loss < report.steps[0].loss, "loss must fall");
        assert!(report.total_seconds > 0.0);
        assert!(report.mean_degraded_step_seconds().is_none());
    }

    #[test]
    fn wrap_outage_campaign_matches_fault_free_loss_but_costs_time() {
        let config = CampaignConfig::demo(MultipodConfig::mesh(4, 4, true));
        let clean = run_campaign(&config, &FaultPlan::new(), None).unwrap();

        // Outage + straggler over the middle of the run.
        let mesh = multipod_topology::Multipod::new(config.mesh.clone());
        let t1 = SimTime::from_seconds(clean.steps[1].start_seconds);
        let t2 = SimTime::from_seconds(clean.steps[5].start_seconds);
        let plan = FaultPlan::wrap_outage_with_straggler(&mesh, 0, t1, t2, 1, 2.0);
        let faulty = run_campaign(&config, &plan, None).unwrap();

        assert_eq!(
            faulty.final_loss, clean.final_loss,
            "timing faults must not change numerics"
        );
        assert!(faulty.degraded_steps > 0);
        assert!(
            faulty.total_seconds > clean.total_seconds,
            "degraded windows must cost simulated time"
        );
        let degraded = faulty.mean_degraded_step_seconds().unwrap();
        let clean_mean = faulty.mean_clean_step_seconds().unwrap();
        assert!(
            degraded > clean_mean,
            "degraded steps must be slower: {degraded} vs {clean_mean}"
        );
    }
}
