//! Declarative fault plans.
//!
//! A [`FaultPlan`] is a list of [`FaultEvent`]s pinned to simulated time.
//! Because both the schedule and the network it drives are deterministic,
//! re-running the same plan produces byte-identical traces — fault
//! campaigns are reproducible experiments, not chaos monkeys.

use serde::{Deserialize, Serialize};

use multipod_simnet::SimTime;
use multipod_topology::{ChipId, Coord, Multipod};

/// One scheduled fault (or repair) on the simulated machine.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum FaultAction {
    /// Both directions of the link between `a` and `b` go down.
    LinkDown { a: ChipId, b: ChipId },
    /// The link between `a` and `b` is repaired.
    LinkUp { a: ChipId, b: ChipId },
    /// Every link incident to `chip` goes down (the chip is lost).
    ChipDown { chip: ChipId },
    /// `host` starts running `slowdown`× slower than its peers.
    StragglerStart { host: u32, slowdown: f64 },
    /// `host` returns to full speed.
    StragglerEnd { host: u32 },
}

/// A [`FaultAction`] pinned to a point in simulated time.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// When the fault takes effect.
    pub at: SimTime,
    /// What happens.
    pub action: FaultAction,
}

/// An ordered campaign of scheduled faults.
///
/// Build one with the chained constructors:
///
/// ```
/// use multipod_faults::FaultPlan;
/// use multipod_simnet::SimTime;
/// use multipod_topology::{Multipod, MultipodConfig};
///
/// let mesh = Multipod::new(MultipodConfig::mesh(4, 4, true));
/// let chips: Vec<_> = mesh.chips().collect();
/// let plan = FaultPlan::new()
///     .link_down(SimTime::from_seconds(0.1), chips[0], chips[1])
///     .link_up(SimTime::from_seconds(0.2), chips[0], chips[1])
///     .straggler(SimTime::from_seconds(0.1), SimTime::from_seconds(0.3), 2, 1.8);
/// assert_eq!(plan.events().len(), 4);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty (fault-free) plan.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Schedules an arbitrary event.
    pub fn with_event(mut self, at: SimTime, action: FaultAction) -> FaultPlan {
        self.events.push(FaultEvent { at, action });
        self
    }

    /// Schedules a link failure at `at`.
    pub fn link_down(self, at: SimTime, a: ChipId, b: ChipId) -> FaultPlan {
        self.with_event(at, FaultAction::LinkDown { a, b })
    }

    /// Schedules a link repair at `at`.
    pub fn link_up(self, at: SimTime, a: ChipId, b: ChipId) -> FaultPlan {
        self.with_event(at, FaultAction::LinkUp { a, b })
    }

    /// Schedules the loss of a whole chip at `at`.
    pub fn chip_down(self, at: SimTime, chip: ChipId) -> FaultPlan {
        self.with_event(at, FaultAction::ChipDown { chip })
    }

    /// Schedules a straggler window: `host` runs `slowdown`× slower from
    /// `from` until `until`.
    ///
    /// # Panics
    ///
    /// Panics if `slowdown < 1.0` (a straggler cannot be faster than its
    /// peers) or `until < from`.
    pub fn straggler(self, from: SimTime, until: SimTime, host: u32, slowdown: f64) -> FaultPlan {
        assert!(
            slowdown >= 1.0,
            "straggler slowdown must be >= 1, got {slowdown}"
        );
        assert!(
            until >= from,
            "straggler window must not end before it starts"
        );
        self.with_event(from, FaultAction::StragglerStart { host, slowdown })
            .with_event(until, FaultAction::StragglerEnd { host })
    }

    /// The canned campaign from the paper's degradation experiments: the
    /// torus Y wrap link of `column` goes down over `[t_down, t_up)` while
    /// `straggler_host` runs `slowdown`× slower over the same window.
    ///
    /// # Panics
    ///
    /// Panics if the mesh has no torus wrap links or `column` is out of
    /// range.
    pub fn wrap_outage_with_straggler(
        mesh: &Multipod,
        column: u32,
        t_down: SimTime,
        t_up: SimTime,
        straggler_host: u32,
        slowdown: f64,
    ) -> FaultPlan {
        assert!(mesh.torus_y(), "wrap outage needs a torus-Y mesh");
        assert!(column < mesh.x_len(), "column {column} out of range");
        let top = mesh.chip_at(Coord::new(column, mesh.y_len() - 1));
        let bottom = mesh.chip_at(Coord::new(column, 0));
        FaultPlan::new()
            .link_down(t_down, top, bottom)
            .link_up(t_up, top, bottom)
            .straggler(t_down, t_up, straggler_host, slowdown)
    }

    /// All scheduled events, in insertion order. [`FaultDriver`] applies
    /// them in time order (ties broken by insertion order).
    ///
    /// [`FaultDriver`]: crate::FaultDriver
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Consumes the plan into its events.
    pub(crate) fn into_events(self) -> Vec<FaultEvent> {
        self.events
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multipod_topology::MultipodConfig;

    #[test]
    fn wrap_outage_targets_the_wrap_link() {
        let mesh = Multipod::new(MultipodConfig::mesh(4, 4, true));
        let t1 = SimTime::from_seconds(0.1);
        let t2 = SimTime::from_seconds(0.2);
        let plan = FaultPlan::wrap_outage_with_straggler(&mesh, 1, t1, t2, 0, 2.0);
        assert_eq!(plan.events().len(), 4);
        let top = mesh.chip_at(Coord::new(1, 3));
        let bottom = mesh.chip_at(Coord::new(1, 0));
        assert_eq!(
            plan.events()[0].action,
            FaultAction::LinkDown { a: top, b: bottom }
        );
        assert_eq!(plan.events()[0].at, t1);
        assert_eq!(plan.events()[1].at, t2);
    }

    #[test]
    #[should_panic(expected = "slowdown must be >= 1")]
    fn rejects_speedup_stragglers() {
        FaultPlan::new().straggler(SimTime::ZERO, SimTime::ZERO, 0, 0.5);
    }
}
