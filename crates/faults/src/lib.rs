//! Deterministic fault campaigns for the multipod simulator.
//!
//! The paper's 4096-chip runs live with hardware reality: links fail,
//! chips die, hosts straggle. This crate turns those events into
//! *scheduled, reproducible experiments*:
//!
//! * [`FaultPlan`] — a declarative list of faults pinned to simulated
//!   time: link outages and repairs, whole-chip loss, straggler windows.
//! * [`FaultDriver`] — replays a plan against the discrete-event
//!   [`multipod_simnet::Network`] as time advances; link/chip events go
//!   through the network's fault wrappers (cache invalidation + fault
//!   spans), straggler state is tracked for the campaign runner.
//! * [`run_campaign`] — trains a synthetic data-parallel model while the
//!   plan's faults land, exercising the whole graceful-degradation stack:
//!   route detours, typed [`multipod_collectives::Degradation`] reports,
//!   replica loss with gradient renormalization and bounded-backoff
//!   retries in [`multipod_core::trainer::DataParallelTrainer`].
//!
//! Determinism is the point: the same plan on the same config yields
//! byte-identical Chrome-trace exports, so degraded-window timing can be
//! asserted in CI rather than eyeballed.
//!
//! ```
//! use multipod_faults::{run_campaign, CampaignConfig, FaultPlan};
//! use multipod_topology::{Multipod, MultipodConfig};
//! use multipod_simnet::SimTime;
//!
//! let config = CampaignConfig::demo(MultipodConfig::mesh(4, 4, true));
//! let mesh = Multipod::new(config.mesh.clone());
//! let plan = FaultPlan::wrap_outage_with_straggler(
//!     &mesh, 0,
//!     SimTime::from_seconds(0.001), SimTime::from_seconds(0.004),
//!     1, 2.0,
//! );
//! let report = run_campaign(&config, &plan, None).unwrap();
//! assert!(report.degraded_steps > 0);
//! ```

mod campaign;
mod driver;
mod plan;

pub use campaign::{run_campaign, CampaignConfig, CampaignReport, StepReport};
pub use driver::FaultDriver;
pub use plan::{FaultAction, FaultEvent, FaultPlan};
