//! Applying a [`FaultPlan`] to the simulated network over time.

use std::collections::BTreeMap;

use multipod_simnet::{Network, SimTime};
use multipod_trace::{SpanCategory, SpanEvent, Track};

use crate::plan::{FaultAction, FaultEvent, FaultPlan};

/// Replays a [`FaultPlan`] against a [`Network`] as simulated time
/// advances.
///
/// [`advance`](FaultDriver::advance) applies every event whose time has
/// come — link and chip faults go straight to the network's fault
/// wrappers (which invalidate cached routes and emit `link-down` /
/// `link-up` / `chip-down` spans); straggler windows are tracked here and
/// exposed through [`slowdown_of`](FaultDriver::slowdown_of) for the
/// campaign runner to fold into host compute time.
#[derive(Debug)]
pub struct FaultDriver {
    events: Vec<FaultEvent>,
    next: usize,
    stragglers: BTreeMap<u32, f64>,
}

impl FaultDriver {
    /// Builds a driver from `plan`, ordering events by time (ties keep
    /// the plan's insertion order).
    pub fn new(plan: FaultPlan) -> FaultDriver {
        let mut events = plan.into_events();
        events.sort_by_key(|e| e.at);
        FaultDriver {
            events,
            next: 0,
            stragglers: BTreeMap::new(),
        }
    }

    /// Applies every event with `at <= now` to `net`; returns how many
    /// fired.
    pub fn advance(&mut self, net: &mut Network, now: SimTime) -> usize {
        let mut fired = 0;
        while let Some(event) = self.events.get(self.next) {
            if event.at > now {
                break;
            }
            let event = event.clone();
            self.next += 1;
            fired += 1;
            match event.action {
                FaultAction::LinkDown { a, b } => net.fail_link(a, b, event.at),
                FaultAction::LinkUp { a, b } => net.heal_link(a, b, event.at),
                FaultAction::ChipDown { chip } => net.fail_chip(chip, event.at),
                FaultAction::StragglerStart { host, slowdown } => {
                    self.stragglers.insert(host, slowdown);
                    emit_host_fault(net, host, "straggler-start", event.at, slowdown);
                }
                FaultAction::StragglerEnd { host } => {
                    let slowdown = self.stragglers.remove(&host).unwrap_or(1.0);
                    emit_host_fault(net, host, "straggler-end", event.at, slowdown);
                }
            }
        }
        fired
    }

    /// The current slowdown factor of `host` (1.0 when healthy).
    pub fn slowdown_of(&self, host: u32) -> f64 {
        self.stragglers.get(&host).copied().unwrap_or(1.0)
    }

    /// The worst slowdown across all currently active stragglers (1.0
    /// when none). A data-parallel step runs at the pace of its slowest
    /// host, so this is the factor a campaign applies to compute time.
    pub fn max_slowdown(&self) -> f64 {
        self.stragglers.values().fold(1.0, |worst, &s| worst.max(s))
    }

    /// Currently active stragglers as `(host, slowdown)` pairs.
    pub fn active_stragglers(&self) -> Vec<(u32, f64)> {
        self.stragglers.iter().map(|(&h, &s)| (h, s)).collect()
    }

    /// Events not yet applied.
    pub fn remaining(&self) -> usize {
        self.events.len() - self.next
    }
}

fn emit_host_fault(net: &Network, host: u32, name: &'static str, at: SimTime, slowdown: f64) {
    if let Some(sink) = net.trace_sink() {
        sink.record_span(
            SpanEvent::new(Track::Host { host }, SpanCategory::Fault, name, at, at)
                .with_arg("slowdown", slowdown),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multipod_simnet::NetworkConfig;
    use multipod_topology::{Multipod, MultipodConfig};

    fn net() -> Network {
        Network::new(
            Multipod::new(MultipodConfig::mesh(2, 4, true)),
            NetworkConfig::tpu_v3(),
        )
    }

    #[test]
    fn events_fire_in_time_order_and_only_once() {
        let mut net = net();
        let chips: Vec<_> = net.mesh().chips().collect();
        // Inserted out of order on purpose.
        let plan = FaultPlan::new()
            .link_up(SimTime::from_seconds(0.2), chips[0], chips[1])
            .link_down(SimTime::from_seconds(0.1), chips[0], chips[1]);
        let mut driver = FaultDriver::new(plan);
        assert_eq!(driver.advance(&mut net, SimTime::from_seconds(0.05)), 0);
        assert_eq!(driver.advance(&mut net, SimTime::from_seconds(0.15)), 1);
        assert_eq!(net.mesh().failed_links().len(), 1);
        assert_eq!(driver.advance(&mut net, SimTime::from_seconds(0.25)), 1);
        assert!(net.mesh().failed_links().is_empty());
        assert_eq!(driver.remaining(), 0);
        assert_eq!(driver.advance(&mut net, SimTime::from_seconds(1.0)), 0);
    }

    #[test]
    fn straggler_windows_track_slowdown() {
        let mut net = net();
        let plan = FaultPlan::new().straggler(
            SimTime::from_seconds(0.1),
            SimTime::from_seconds(0.2),
            3,
            2.5,
        );
        let mut driver = FaultDriver::new(plan);
        assert_eq!(driver.max_slowdown(), 1.0);
        driver.advance(&mut net, SimTime::from_seconds(0.1));
        assert_eq!(driver.slowdown_of(3), 2.5);
        assert_eq!(driver.max_slowdown(), 2.5);
        assert_eq!(driver.active_stragglers(), vec![(3, 2.5)]);
        driver.advance(&mut net, SimTime::from_seconds(0.2));
        assert_eq!(driver.max_slowdown(), 1.0);
    }
}
