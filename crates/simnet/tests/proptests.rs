//! Property tests for the network simulator.

use multipod_simnet::{EventQueue, HeapEventQueue, Network, NetworkConfig, SimTime};
use multipod_topology::{ChipId, Multipod, MultipodConfig};
use proptest::prelude::*;

fn net(x: u32, y: u32) -> Network {
    Network::new(
        Multipod::new(MultipodConfig::mesh(x, y, true)),
        NetworkConfig::tpu_v3(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Transfer times are deterministic and monotone in payload size.
    #[test]
    fn transfers_deterministic_and_monotone(
        x in 2u32..8, y in 1u32..8,
        a_sel in 0usize..1000, b_sel in 0usize..1000,
        bytes in 1u64..100_000_000,
        extra in 1u64..100_000_000,
    ) {
        let run = |payload: u64| {
            let mut n = net(x, y);
            let chips = n.mesh().num_chips();
            let a = ChipId((a_sel % chips) as u32);
            let b = ChipId((b_sel % chips) as u32);
            n.transfer(a, b, payload, SimTime::ZERO).unwrap().finish
        };
        prop_assert_eq!(run(bytes), run(bytes));
        prop_assert!(run(bytes + extra) >= run(bytes));
    }

    /// Contention never makes things faster: issuing a second transfer on
    /// the same link after a first one finishes no earlier than the first
    /// alone.
    #[test]
    fn contention_is_monotone(
        bytes1 in 1u64..50_000_000,
        bytes2 in 1u64..50_000_000,
    ) {
        let mut quiet = net(2, 1);
        let alone = quiet
            .transfer(ChipId(0), ChipId(1), bytes2, SimTime::ZERO)
            .unwrap()
            .finish;
        let mut busy = net(2, 1);
        busy.transfer(ChipId(0), ChipId(1), bytes1, SimTime::ZERO)
            .unwrap();
        let contended = busy
            .transfer(ChipId(0), ChipId(1), bytes2, SimTime::ZERO)
            .unwrap()
            .finish;
        prop_assert!(contended >= alone);
    }

    /// A later start time never produces an earlier finish.
    #[test]
    fn start_time_shifts_finish(
        bytes in 1u64..10_000_000,
        delay in 0.0f64..1.0,
    ) {
        let mut a = net(4, 4);
        let early = a
            .transfer(ChipId(0), ChipId(1), bytes, SimTime::ZERO)
            .unwrap()
            .finish;
        let mut b = net(4, 4);
        let late = b
            .transfer(ChipId(0), ChipId(1), bytes, SimTime::from_seconds(delay))
            .unwrap()
            .finish;
        prop_assert!(late.seconds() >= early.seconds());
        prop_assert!((late.seconds() - delay - early.seconds()).abs() < 1e-12);
    }

    /// The event queue pops every scheduled event exactly once, in
    /// non-decreasing time order with FIFO ties.
    #[test]
    fn event_queue_total_order(times in prop::collection::vec(0u32..1000, 1..50)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_seconds(t as f64), i);
        }
        let mut popped = Vec::new();
        let mut last = SimTime::ZERO;
        while let Some((t, payload)) = q.pop() {
            prop_assert!(t >= last);
            // FIFO among equal times: payload indices with the same time
            // appear in insertion order.
            if t == last {
                if let Some(&prev) = popped.last() {
                    let prev: usize = prev;
                    if times[prev] == times[payload] {
                        prop_assert!(prev < payload);
                    }
                }
            }
            last = t;
            popped.push(payload);
        }
        prop_assert_eq!(popped.len(), times.len());
    }

    /// The calendar queue is observationally equivalent to the binary-heap
    /// reference: identical pop sequences (times and payloads, FIFO ties
    /// included) under arbitrary interleaved schedule/pop traffic at any
    /// timescale — from sub-bucket-width spacings to multi-second gaps.
    #[test]
    fn calendar_queue_matches_heap_reference(
        ops in prop::collection::vec((0u32..2000, prop::bool::ANY), 1..120),
        scale in prop::sample::select(vec![1e-9f64, 1e-6, 1e-3, 0.5]),
    ) {
        let mut cal = EventQueue::new();
        let mut heap = HeapEventQueue::new();
        for (i, &(t, pop_after)) in ops.iter().enumerate() {
            let time = SimTime::from_seconds(t as f64 * scale);
            cal.schedule(time, i);
            heap.schedule(time, i);
            if pop_after {
                prop_assert_eq!(cal.pop(), heap.pop());
            }
        }
        while let Some(expected) = heap.pop() {
            prop_assert_eq!(cal.pop(), Some(expected));
        }
        prop_assert_eq!(cal.pop(), None);
        prop_assert!(cal.is_empty());
    }

    /// Failing or healing a link invalidates memoized routes and link
    /// occupancy exactly as on a network that never cached anything: after
    /// the same fault lands on a traffic-warmed network and a fresh one,
    /// both produce bit-identical transfer times, and again after healing.
    #[test]
    fn fault_invalidation_matches_fresh_network(
        warm in prop::collection::vec((0usize..64, 0usize..64, 1u64..5_000_000), 0..12),
        probe in prop::collection::vec((0usize..64, 0usize..64, 1u64..5_000_000), 1..12),
        fx in 0u32..8, fy in 0u32..8,
        horizontal in prop::bool::ANY,
    ) {
        let (x, y) = (8u32, 8u32);
        let mut warmed = net(x, y);
        let chips = warmed.mesh().num_chips();
        let chip = |sel: usize| ChipId((sel % chips) as u32);
        // Warm the route cache and link occupancy with arbitrary traffic.
        for &(a, b, bytes) in &warm {
            warmed.transfer(chip(a), chip(b), bytes, SimTime::ZERO).unwrap();
        }
        // Fail one torus link incident to (fx, fy) on the warmed network
        // and on a network that has never routed anything.
        let la = ChipId(fy * x + fx);
        let lb = if horizontal {
            ChipId(fy * x + (fx + 1) % x)
        } else {
            ChipId(((fy + 1) % y) * x + fx)
        };
        let mut fresh = net(x, y);
        warmed.fail_link(la, lb, SimTime::ZERO);
        fresh.fail_link(la, lb, SimTime::ZERO);
        // Dimension-order routing does not detour, so some probes can hit
        // `NoRoute` while the link is down — both networks must then fail
        // identically, not just succeed identically.
        let run_probes = |n: &mut Network| -> Vec<Result<u64, String>> {
            probe
                .iter()
                .map(|&(a, b, bytes)| {
                    n.transfer(chip(a), chip(b), bytes, SimTime::ZERO)
                        .map(|t| t.finish.seconds().to_bits())
                        .map_err(|e| e.to_string())
                })
                .collect()
        };
        prop_assert_eq!(run_probes(&mut warmed), run_probes(&mut fresh));
        // Healing must bring the link back identically on both.
        warmed.heal_link(la, lb, SimTime::ZERO);
        fresh.heal_link(la, lb, SimTime::ZERO);
        prop_assert_eq!(run_probes(&mut warmed), run_probes(&mut fresh));
    }
}
