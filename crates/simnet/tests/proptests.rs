//! Property tests for the network simulator.

use multipod_simnet::{EventQueue, Network, NetworkConfig, SimTime};
use multipod_topology::{ChipId, Multipod, MultipodConfig};
use proptest::prelude::*;

fn net(x: u32, y: u32) -> Network {
    Network::new(
        Multipod::new(MultipodConfig::mesh(x, y, true)),
        NetworkConfig::tpu_v3(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Transfer times are deterministic and monotone in payload size.
    #[test]
    fn transfers_deterministic_and_monotone(
        x in 2u32..8, y in 1u32..8,
        a_sel in 0usize..1000, b_sel in 0usize..1000,
        bytes in 1u64..100_000_000,
        extra in 1u64..100_000_000,
    ) {
        let run = |payload: u64| {
            let mut n = net(x, y);
            let chips = n.mesh().num_chips();
            let a = ChipId((a_sel % chips) as u32);
            let b = ChipId((b_sel % chips) as u32);
            n.transfer(a, b, payload, SimTime::ZERO).unwrap().finish
        };
        prop_assert_eq!(run(bytes), run(bytes));
        prop_assert!(run(bytes + extra) >= run(bytes));
    }

    /// Contention never makes things faster: issuing a second transfer on
    /// the same link after a first one finishes no earlier than the first
    /// alone.
    #[test]
    fn contention_is_monotone(
        bytes1 in 1u64..50_000_000,
        bytes2 in 1u64..50_000_000,
    ) {
        let mut quiet = net(2, 1);
        let alone = quiet
            .transfer(ChipId(0), ChipId(1), bytes2, SimTime::ZERO)
            .unwrap()
            .finish;
        let mut busy = net(2, 1);
        busy.transfer(ChipId(0), ChipId(1), bytes1, SimTime::ZERO)
            .unwrap();
        let contended = busy
            .transfer(ChipId(0), ChipId(1), bytes2, SimTime::ZERO)
            .unwrap()
            .finish;
        prop_assert!(contended >= alone);
    }

    /// A later start time never produces an earlier finish.
    #[test]
    fn start_time_shifts_finish(
        bytes in 1u64..10_000_000,
        delay in 0.0f64..1.0,
    ) {
        let mut a = net(4, 4);
        let early = a
            .transfer(ChipId(0), ChipId(1), bytes, SimTime::ZERO)
            .unwrap()
            .finish;
        let mut b = net(4, 4);
        let late = b
            .transfer(ChipId(0), ChipId(1), bytes, SimTime::from_seconds(delay))
            .unwrap()
            .finish;
        prop_assert!(late.seconds() >= early.seconds());
        prop_assert!((late.seconds() - delay - early.seconds()).abs() < 1e-12);
    }

    /// The event queue pops every scheduled event exactly once, in
    /// non-decreasing time order with FIFO ties.
    #[test]
    fn event_queue_total_order(times in prop::collection::vec(0u32..1000, 1..50)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_seconds(t as f64), i);
        }
        let mut popped = Vec::new();
        let mut last = SimTime::ZERO;
        while let Some((t, payload)) = q.pop() {
            prop_assert!(t >= last);
            // FIFO among equal times: payload indices with the same time
            // appear in insertion order.
            if t == last {
                if let Some(&prev) = popped.last() {
                    let prev: usize = prev;
                    if times[prev] == times[payload] {
                        prop_assert!(prev < payload);
                    }
                }
            }
            last = t;
            popped.push(payload);
        }
        prop_assert_eq!(popped.len(), times.len());
    }
}
