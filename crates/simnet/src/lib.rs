//! Discrete-event simulation of the multipod interconnect.
//!
//! The paper's performance analysis (§5) hinges on how long transfers take
//! on the ICI network: ring reduce-scatters along the torus Y dimension,
//! open-chain reductions along the 128-chip X dimension, and peer-hopping
//! rings that traverse intermediate chips. This crate provides:
//!
//! * [`SimTime`] — simulated seconds.
//! * [`EventQueue`] — a deterministic discrete-event queue (also used by
//!   the host input-pipeline simulator).
//! * [`Network`] — a cut-through, per-directed-link occupancy model over a
//!   [`multipod_topology::Multipod`], used to time every message the
//!   collective schedules issue.
//!
//! ```
//! use multipod_topology::{Multipod, MultipodConfig, ChipId};
//! use multipod_simnet::{Network, NetworkConfig, SimTime};
//!
//! let mesh = Multipod::new(MultipodConfig::mesh(4, 4, true));
//! let mut net = Network::new(mesh, NetworkConfig::tpu_v3());
//! let t = net
//!     .transfer(ChipId(0), ChipId(1), 1 << 20, SimTime::ZERO)
//!     .unwrap();
//! assert!(t.finish > SimTime::ZERO);
//! ```

mod engine;
mod error;
mod network;

pub use engine::{EventQueue, HeapEventQueue, QueueStats};
pub use error::NetworkError;
pub use network::{Network, NetworkConfig, Transfer};
// `SimTime` moved down into `multipod-trace` (so trace events can be
// stamped below this crate); re-exported here for compatibility.
pub use multipod_trace::SimTime;
