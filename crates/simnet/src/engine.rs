//! A deterministic discrete-event queue.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::SimTime;

/// A min-heap of timestamped events with FIFO tie-breaking.
///
/// Determinism matters: two events scheduled for the same instant pop in
/// insertion order, so simulation results are bit-stable across runs.
///
/// ```
/// use multipod_simnet::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_seconds(2.0), "late");
/// q.schedule(SimTime::from_seconds(1.0), "early");
/// assert_eq!(q.pop().unwrap().1, "early");
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Reverse<Entry<T>>>,
    seq: u64,
    popped: u64,
    max_depth: usize,
}

/// Lifetime statistics of an [`EventQueue`], for telemetry export.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Total events ever scheduled.
    pub scheduled: u64,
    /// Total events popped.
    pub popped: u64,
    /// Deepest the queue ever got.
    pub max_depth: usize,
    /// Events currently pending.
    pub pending: usize,
}

#[derive(Debug, Clone)]
struct Entry<T> {
    time: SimTime,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time.cmp(&other.time).then(self.seq.cmp(&other.seq))
    }
}

impl<T> EventQueue<T> {
    /// An empty queue.
    pub fn new() -> EventQueue<T> {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            popped: 0,
            max_depth: 0,
        }
    }

    /// Schedules `payload` at `time`.
    pub fn schedule(&mut self, time: SimTime, payload: T) {
        let entry = Entry {
            time,
            seq: self.seq,
            payload,
        };
        self.seq += 1;
        self.heap.push(Reverse(entry));
        self.max_depth = self.max_depth.max(self.heap.len());
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        let popped = self.heap.pop().map(|Reverse(e)| (e.time, e.payload));
        if popped.is_some() {
            self.popped += 1;
        }
        popped
    }

    /// Lifetime scheduling statistics (`seq` doubles as the scheduled
    /// count — it increments once per schedule and never resets).
    pub fn stats(&self) -> QueueStats {
        QueueStats {
            scheduled: self.seq,
            popped: self.popped,
            max_depth: self.max_depth,
            pending: self.heap.len(),
        }
    }

    /// The time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Removes and returns every event scheduled for the earliest pending
    /// instant, in insertion order. Schedulers use this to process all
    /// completions at a timestamp before dispatching new work, so the
    /// dispatch decision sees the full set of freed resources.
    pub fn pop_batch(&mut self) -> Option<(SimTime, Vec<T>)> {
        let time = self.peek_time()?;
        let mut batch = Vec::new();
        while self.peek_time() == Some(time) {
            // Invariant: peek just confirmed a pending event at `time`.
            let (_, payload) = self.pop().expect("peeked event must pop");
            batch.push(payload);
        }
        Some((time, batch))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_seconds(3.0), 'c');
        q.schedule(SimTime::from_seconds(1.0), 'a');
        q.schedule(SimTime::from_seconds(2.0), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_seconds(1.0);
        for i in 0..10 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_seconds(5.0), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_seconds(5.0)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn stats_track_depth_and_throughput() {
        let mut q = EventQueue::new();
        for i in 0..4 {
            q.schedule(SimTime::from_seconds(i as f64), i);
        }
        q.pop();
        q.schedule(SimTime::from_seconds(9.0), 99);
        let stats = q.stats();
        assert_eq!(stats.scheduled, 5);
        assert_eq!(stats.popped, 1);
        assert_eq!(stats.max_depth, 4);
        assert_eq!(stats.pending, 4);
    }

    #[test]
    fn pop_batch_drains_one_instant_in_fifo_order() {
        let mut q = EventQueue::new();
        let t1 = SimTime::from_seconds(1.0);
        q.schedule(SimTime::from_seconds(2.0), "later");
        q.schedule(t1, "a");
        q.schedule(t1, "b");
        let (time, batch) = q.pop_batch().unwrap();
        assert_eq!(time, t1);
        assert_eq!(batch, vec!["a", "b"]);
        assert_eq!(q.len(), 1);
        let (time, batch) = q.pop_batch().unwrap();
        assert_eq!(time, SimTime::from_seconds(2.0));
        assert_eq!(batch, vec!["later"]);
        assert!(q.pop_batch().is_none());
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_seconds(2.0), "b");
        q.schedule(SimTime::from_seconds(4.0), "d");
        assert_eq!(q.pop().unwrap().1, "b");
        q.schedule(SimTime::from_seconds(1.0), "a");
        q.schedule(SimTime::from_seconds(3.0), "c");
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "c");
        assert_eq!(q.pop().unwrap().1, "d");
    }
}
