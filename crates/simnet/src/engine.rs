//! Deterministic discrete-event queues.
//!
//! Two implementations share one contract (earliest time first, FIFO among
//! ties, bit-stable across runs):
//!
//! * [`EventQueue`] — the production **calendar queue**: events hash into
//!   time buckets of a fixed width, so schedule/pop are O(1) amortized
//!   instead of the `O(log n)` sift of a binary heap. This is the queue
//!   behind the simulator's hot loops (task-graph scheduling, the input
//!   pipeline, and the `repro_simnet` event replay).
//! * [`HeapEventQueue`] — the seed `BinaryHeap` queue, kept as the
//!   observational reference: property tests assert the calendar queue
//!   pops the exact same sequence, and `repro_simnet` uses it as the
//!   baseline side of its speedup gate.
//!
//! Determinism matters more than raw speed: two events scheduled for the
//! same instant pop in insertion order (a monotonic sequence number breaks
//! ties), so simulation results are bit-stable regardless of how the
//! events were bucketed or how the heap happened to be shaped by earlier
//! traffic.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use crate::SimTime;

/// Default bucket width, seconds. Sized to the α timescale of the TPU-v3
/// interconnect (microsecond-class hop latencies): completions separated
/// by at least one hop land in distinct buckets, so a bucket holds only
/// genuinely colliding events.
const DEFAULT_BUCKET_WIDTH: f64 = 1.0e-6;

/// Initial number of buckets; grows/shrinks with queue depth.
const MIN_BUCKETS: usize = 16;

/// A pop that finds this many *distinct instants* sharing one bucket
/// means the width is stale for the current event spacing (inserts then
/// pay a per-push group shuffle); an adaptive queue re-derives the width
/// from the pending events, rate-limited so the rebuild itself stays
/// amortized O(1). Same-instant ties never count toward crowding — they
/// collapse into one FIFO group no matter how many there are.
const CROWDED_BUCKET: usize = 16;

/// Lifetime statistics of an event queue, for telemetry export.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Total events ever scheduled.
    pub scheduled: u64,
    /// Total events popped.
    pub popped: u64,
    /// Deepest the queue ever got.
    pub max_depth: usize,
    /// Events currently pending.
    pub pending: usize,
}

#[derive(Debug, Clone)]
struct Entry<T> {
    time: SimTime,
    seq: u64,
    payload: T,
}

impl<T> Entry<T> {
    /// The total-order key: earliest time first, FIFO among ties.
    fn key(&self) -> (SimTime, u64) {
        (self.time, self.seq)
    }
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

/// A calendar bucket: pending events grouped by *exact* timestamp, with
/// groups sorted ascending by time and each group a FIFO in insertion
/// (`seq`) order.
///
/// The sequence number increases monotonically across the whole queue, so
/// `push_back`/`pop_front` on a group is exactly `(time, seq)` order — no
/// sort, sift, or scan. This is what makes lockstep collectives cheap: a
/// step completion there schedules thousands of events at the *identical*
/// instant (same bytes, same hops, no contention skew), which no bucket
/// width can spread. Grouped, those ties cost O(1) per pop with purely
/// sequential memory traffic, where a per-bucket heap would pay an
/// O(log k) random-access sift and an unsorted bucket an O(k) min-scan.
#[derive(Debug, Clone)]
struct Bucket<T> {
    groups: Vec<(SimTime, VecDeque<Entry<T>>)>,
}

impl<T> Default for Bucket<T> {
    fn default() -> Self {
        Bucket { groups: Vec::new() }
    }
}

impl<T> Bucket<T> {
    fn push(&mut self, e: Entry<T>) {
        let time = e.time;
        match self.groups.binary_search_by(|g| g.0.cmp(&time)) {
            Ok(i) => self.groups[i].1.push_back(e),
            Err(i) => self.groups.insert(i, (time, VecDeque::from([e]))),
        }
    }

    /// The minimum-key entry: front of the earliest time group.
    fn peek(&self) -> Option<&Entry<T>> {
        self.groups.first().and_then(|(_, g)| g.front())
    }

    fn pop(&mut self) -> Option<Entry<T>> {
        let (_, group) = self.groups.first_mut()?;
        let e = group.pop_front()?;
        if group.is_empty() {
            self.groups.remove(0);
        }
        Some(e)
    }

    /// Removes and returns the entire earliest time group.
    fn pop_group(&mut self) -> Option<(SimTime, VecDeque<Entry<T>>)> {
        if self.groups.is_empty() {
            return None;
        }
        Some(self.groups.remove(0))
    }

    /// Distinct instants in this bucket — the crowding metric for width
    /// adaptation (ties are free; too many separate times are not).
    fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Drains every entry; groups come out in time order and each group
    /// in `seq` order, so re-pushing in iteration order preserves FIFO.
    fn take_entries(&mut self) -> impl Iterator<Item = Entry<T>> + '_ {
        self.groups.drain(..).flat_map(|(_, g)| g)
    }
}

/// A calendar-queue (bucketed) min-queue of timestamped events with FIFO
/// tie-breaking.
///
/// Events land in the bucket `floor(time / width) mod num_buckets`; the
/// pop cursor walks epochs in order, so a pop inspects only the handful
/// of events that collide in the current time bucket instead of sifting a
/// global heap. Within a bucket, events are grouped by exact timestamp
/// (see [`Bucket`]), so locating the next event is a peek and removing it
/// is an O(1) `pop_front` — even when thousands of lockstep completions
/// tie at one instant. Bucket count adapts to queue depth; the width
/// defaults to the interconnect hop-latency timescale and can be pinned
/// with [`EventQueue::with_bucket_width`].
///
/// ```
/// use multipod_simnet::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_seconds(2.0), "late");
/// q.schedule(SimTime::from_seconds(1.0), "early");
/// assert_eq!(q.pop().unwrap().1, "early");
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    buckets: Vec<Bucket<T>>,
    /// Bucket width in seconds; strictly positive and finite.
    width: f64,
    /// `1.0 / width`, cached so the per-event epoch computation is a
    /// multiply instead of a divide. Any fixed positive factor yields a
    /// monotone epoch map, so pop order does not depend on rounding here.
    inv_width: f64,
    /// The epoch (`floor(time / width)`) the pop cursor is at. Invariant:
    /// no pending event has an epoch below the cursor.
    cursor: u64,
    /// Pending events.
    len: usize,
    /// `true` when the caller pinned the width; adaptive resizing then
    /// only changes the bucket count.
    fixed_width: bool,
    seq: u64,
    popped: u64,
    max_depth: usize,
    /// `popped` at the last crowd-triggered width re-derivation; gates
    /// the rebuild rate.
    last_adapt: u64,
}

impl<T> EventQueue<T> {
    /// An empty queue with the default (hop-latency-scale) bucket width,
    /// adapted automatically as the observed event spacing drifts.
    pub fn new() -> EventQueue<T> {
        let mut q = EventQueue::with_bucket_width(DEFAULT_BUCKET_WIDTH);
        q.fixed_width = false;
        q
    }

    /// An empty queue with a pinned bucket width in seconds — size it to
    /// the timescale separating independent completions (e.g. the α of an
    /// α–β cost model). The width is clamped to a positive finite value.
    pub fn with_bucket_width(seconds: f64) -> EventQueue<T> {
        let width = if seconds.is_finite() && seconds > 0.0 {
            seconds
        } else {
            DEFAULT_BUCKET_WIDTH
        };
        EventQueue {
            buckets: (0..MIN_BUCKETS).map(|_| Bucket::default()).collect(),
            width,
            inv_width: width.recip(),
            cursor: 0,
            len: 0,
            fixed_width: seconds.is_finite() && seconds > 0.0,
            seq: 0,
            popped: 0,
            max_depth: 0,
            last_adapt: 0,
        }
    }

    fn epoch_of(&self, time: SimTime) -> u64 {
        // Saturating f64→u64 cast: times far beyond width * u64::MAX all
        // collapse into the last epoch, where in-bucket (time, seq)
        // ordering still applies.
        (time.seconds() * self.inv_width) as u64
    }

    fn bucket_of_epoch(&self, epoch: u64) -> usize {
        (epoch % self.buckets.len() as u64) as usize
    }

    /// Schedules `payload` at `time`.
    pub fn schedule(&mut self, time: SimTime, payload: T) {
        if self.len >= self.buckets.len() * 2 {
            self.resize(self.buckets.len() * 2);
        }
        let entry = Entry {
            time,
            seq: self.seq,
            payload,
        };
        self.seq += 1;
        let epoch = self.epoch_of(time);
        if self.len == 0 || epoch < self.cursor {
            self.cursor = epoch;
        }
        let b = self.bucket_of_epoch(epoch);
        self.buckets[b].push(entry);
        self.len += 1;
        self.max_depth = self.max_depth.max(self.len);
    }

    /// Rebuilds the calendar with `num_buckets` buckets, re-deriving the
    /// width from the observed event spacing (unless pinned).
    fn resize(&mut self, num_buckets: usize) {
        let num_buckets = num_buckets.max(MIN_BUCKETS);
        let entries: Vec<Entry<T>> = self
            .buckets
            .iter_mut()
            .flat_map(Bucket::take_entries)
            .collect();
        if !self.fixed_width && self.len >= 2 {
            let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
            for e in &entries {
                lo = lo.min(e.time.seconds());
                hi = hi.max(e.time.seconds());
            }
            // Three average gaps per bucket keeps the walk short without
            // spraying one event per bucket; degenerate spans keep the
            // current width.
            let gap = 3.0 * (hi - lo) / self.len as f64;
            if gap.is_finite() && gap > 0.0 {
                self.width = gap;
                self.inv_width = gap.recip();
            }
        }
        self.buckets = (0..num_buckets).map(|_| Bucket::default()).collect();
        let mut min_epoch = u64::MAX;
        for e in &entries {
            min_epoch = min_epoch.min(self.epoch_of(e.time));
        }
        self.cursor = if entries.is_empty() { 0 } else { min_epoch };
        for e in entries {
            let b = self.bucket_of_epoch(self.epoch_of(e.time));
            self.buckets[b].push(e);
        }
    }

    /// Whether `bucket`'s minimum entry belongs to `epoch`.
    ///
    /// The bucket's peek is its minimum `(time, seq)` key, and epochs are
    /// monotone in time, so the peek also carries the bucket's minimum
    /// epoch: a mismatch means the bucket holds no event of `epoch` at all
    /// (only later calendar years aliasing onto the same slot).
    fn min_is_in_epoch(&self, bucket: usize, epoch: u64) -> bool {
        self.buckets[bucket]
            .peek()
            .is_some_and(|e| self.epoch_of(e.time) == epoch)
    }

    /// The smallest epoch among all pending events (queue must be
    /// non-empty); an O(buckets) peek sweep, used to leap over empty
    /// calendar years instead of walking them bucket by bucket.
    fn global_min_epoch(&self) -> u64 {
        let mut min = u64::MAX;
        for bucket in &self.buckets {
            if let Some(e) = bucket.peek() {
                min = min.min(self.epoch_of(e.time));
            }
        }
        min
    }

    /// Advances the cursor to the first epoch holding a pending event and
    /// returns that epoch's bucket; the bucket's heap peek is then the
    /// queue-wide minimum entry.
    fn advance_to_next(&mut self) -> Option<usize> {
        if self.len == 0 {
            return None;
        }
        let mut scanned = 0usize;
        let mut rebuilt = false;
        loop {
            let b = self.bucket_of_epoch(self.cursor);
            if self.min_is_in_epoch(b, self.cursor) {
                return Some(b);
            }
            self.cursor = self.cursor.saturating_add(1);
            scanned += 1;
            if scanned >= self.buckets.len() {
                // A whole calendar year without a hit means the width no
                // longer matches the event spacing (e.g. it was derived
                // from an initial same-instant burst). Rebuild once,
                // re-deriving the width from the pending events; the walk
                // restarts at their minimum epoch, so the next iterations
                // find the event within a few buckets.
                if !self.fixed_width && !rebuilt {
                    self.resize(self.buckets.len());
                    rebuilt = true;
                    scanned = 0;
                    continue;
                }
                // Pinned (or degenerate) width: jump straight to the
                // earliest pending epoch. The entry achieving the global
                // minimum time lives in that epoch's own bucket, so its
                // peek is guaranteed to match.
                self.cursor = self.global_min_epoch();
                return Some(self.bucket_of_epoch(self.cursor));
            }
        }
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        let b = self.advance_to_next()?;
        // `advance_to_next` returned a bucket whose peek is the queue-wide
        // minimum, so the bucket pop cannot come back empty.
        let e = self.buckets[b].pop()?;
        self.len -= 1;
        self.popped += 1;
        self.maybe_adapt(b);
        Some((e.time, e.payload))
    }

    /// Post-pop maintenance: shrinks the calendar when depth drops, and
    /// re-derives the width when the pop found bucket `b` crowded.
    ///
    /// Crowding means the width is stale for the current event spacing —
    /// e.g. it was derived while a same-instant burst pinned the span to
    /// zero, and live events with *distinct* times now pile into a few
    /// buckets, paying O(log k) heap sifts in the pile size instead of
    /// O(1). Resizing in place re-derives the width from the *pending*
    /// events (see [`EventQueue::resize`]), spreading them back out.
    /// Rebuilds are rate-limited to one per half-queue of pops so bursts
    /// that genuinely share an instant (which no width can spread) cost
    /// amortized O(1) rather than a rebuild per pop.
    fn maybe_adapt(&mut self, b: usize) {
        if self.buckets.len() > MIN_BUCKETS && self.len < self.buckets.len() / 4 {
            self.resize(self.buckets.len() / 2);
        } else if !self.fixed_width
            && self.buckets[b].group_count() >= CROWDED_BUCKET
            && self.popped.saturating_sub(self.last_adapt) >= (self.len as u64 / 2).max(64)
        {
            self.last_adapt = self.popped;
            self.resize(self.buckets.len());
        }
    }

    /// Lifetime scheduling statistics (`seq` doubles as the scheduled
    /// count — it increments once per schedule and never resets).
    pub fn stats(&self) -> QueueStats {
        QueueStats {
            scheduled: self.seq,
            popped: self.popped,
            max_depth: self.max_depth,
            pending: self.len,
        }
    }

    /// The time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        if self.len == 0 {
            return None;
        }
        // Read-only version of the cursor walk (the cursor itself only
        // moves on pop).
        let mut epoch = self.cursor;
        let mut scanned = 0usize;
        loop {
            let b = self.bucket_of_epoch(epoch);
            if self.min_is_in_epoch(b, epoch) {
                return self.buckets[b].peek().map(|e| e.time);
            }
            epoch = epoch.saturating_add(1);
            scanned += 1;
            if scanned >= self.buckets.len() {
                let epoch = self.global_min_epoch();
                let b = self.bucket_of_epoch(epoch);
                return self.buckets[b].peek().map(|e| e.time);
            }
        }
    }

    /// Removes and returns every event scheduled for the earliest pending
    /// instant, in insertion order. Schedulers use this to process all
    /// completions at a timestamp before dispatching new work, so the
    /// dispatch decision sees the full set of freed resources.
    ///
    /// Equal times share an epoch, so the whole batch lives in one bucket
    /// as a single time group and drains in one `pop_group`, already in
    /// insertion order.
    pub fn pop_batch(&mut self) -> Option<(SimTime, Vec<T>)> {
        let b = self.advance_to_next()?;
        let (time, group) = self.buckets[b].pop_group()?;
        self.len -= group.len();
        self.popped += group.len() as u64;
        self.maybe_adapt(b);
        Some((time, group.into_iter().map(|e| e.payload).collect()))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue::new()
    }
}

/// The seed binary-heap event queue: a min-heap with the same monotonic
/// sequence number breaking same-instant ties FIFO.
///
/// Kept as the observational reference for [`EventQueue`]: the simnet
/// property tests drive both queues through identical schedules and
/// assert identical pop sequences, and `repro_simnet` measures the
/// calendar queue's speedup against this implementation.
#[derive(Debug, Clone)]
pub struct HeapEventQueue<T> {
    heap: BinaryHeap<Reverse<Entry<T>>>,
    seq: u64,
    popped: u64,
    max_depth: usize,
}

impl<T> HeapEventQueue<T> {
    /// An empty queue.
    pub fn new() -> HeapEventQueue<T> {
        HeapEventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            popped: 0,
            max_depth: 0,
        }
    }

    /// Schedules `payload` at `time`.
    pub fn schedule(&mut self, time: SimTime, payload: T) {
        let entry = Entry {
            time,
            seq: self.seq,
            payload,
        };
        self.seq += 1;
        self.heap.push(Reverse(entry));
        self.max_depth = self.max_depth.max(self.heap.len());
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        let popped = self.heap.pop().map(|Reverse(e)| (e.time, e.payload));
        if popped.is_some() {
            self.popped += 1;
        }
        popped
    }

    /// Lifetime scheduling statistics.
    pub fn stats(&self) -> QueueStats {
        QueueStats {
            scheduled: self.seq,
            popped: self.popped,
            max_depth: self.max_depth,
            pending: self.heap.len(),
        }
    }

    /// The time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Removes and returns every event scheduled for the earliest pending
    /// instant, in insertion order.
    pub fn pop_batch(&mut self) -> Option<(SimTime, Vec<T>)> {
        let time = self.peek_time()?;
        let mut batch = Vec::new();
        while self.peek_time() == Some(time) {
            // Invariant: peek just confirmed a pending event at `time`,
            // so the pop cannot come back empty.
            if let Some((_, payload)) = self.pop() {
                batch.push(payload);
            }
        }
        Some((time, batch))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<T> Default for HeapEventQueue<T> {
    fn default() -> Self {
        HeapEventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_seconds(3.0), 'c');
        q.schedule(SimTime::from_seconds(1.0), 'a');
        q.schedule(SimTime::from_seconds(2.0), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_seconds(1.0);
        for i in 0..10 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    /// Regression pin for the event-ordering determinism bug: same-time
    /// events must pop FIFO (by schedule order) no matter what other
    /// traffic surrounds them or how the internal buckets/heap were
    /// shaped by insertion history.
    #[test]
    fn colliding_events_pop_fifo_under_shuffled_surrounding_traffic() {
        // Four events collide at t=5; decoy events at other instants are
        // interleaved differently in every scenario.
        let collide = SimTime::from_seconds(5.0);
        let decoys: Vec<f64> = vec![9.0, 1.0, 5.5, 0.25, 7.0, 4.75, 6.0, 2.0];
        // Deterministic shuffles: rotations and a reversal of the decoy
        // insertion positions.
        let scenarios: Vec<Vec<usize>> = (0..decoys.len())
            .map(|r| (0..decoys.len()).map(|i| (i + r) % decoys.len()).collect())
            .chain(std::iter::once((0..decoys.len()).rev().collect()))
            .collect();
        let mut reference: Option<Vec<(u64, i64)>> = None;
        for order in &scenarios {
            let mut q: EventQueue<i64> = EventQueue::new();
            let mut h: HeapEventQueue<i64> = HeapEventQueue::new();
            // Interleave: decoy, then one collider, decoy, collider, ...
            let mut collider = 0i64;
            for (k, &d) in order.iter().enumerate() {
                let t = SimTime::from_seconds(decoys[d]);
                q.schedule(t, 100 + d as i64);
                h.schedule(t, 100 + d as i64);
                if k % 2 == 0 && collider < 4 {
                    q.schedule(collide, collider);
                    h.schedule(collide, collider);
                    collider += 1;
                }
            }
            let drained: Vec<(u64, i64)> =
                std::iter::from_fn(|| q.pop().map(|(t, p)| (t.seconds().to_bits(), p))).collect();
            let heap_drained: Vec<(u64, i64)> =
                std::iter::from_fn(|| h.pop().map(|(t, p)| (t.seconds().to_bits(), p))).collect();
            assert_eq!(drained, heap_drained, "calendar and heap must agree");
            // The colliding block pops as 0,1,2,3 in every scenario.
            let block: Vec<i64> = drained
                .iter()
                .filter(|&&(t, _)| t == collide.seconds().to_bits())
                .map(|&(_, p)| p)
                .collect();
            assert_eq!(block, vec![0, 1, 2, 3]);
            // Final state identical across scenarios: same multiset of
            // (time, payload) pops in the same total order for the
            // colliding block, same stats.
            assert_eq!(q.len(), 0);
            assert_eq!(q.stats().popped, drained.len() as u64);
            match &reference {
                None => reference = Some(block.iter().map(|&p| (0, p)).collect()),
                Some(r) => assert_eq!(r, &block.iter().map(|&p| (0, p)).collect::<Vec<_>>()),
            }
        }
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_seconds(5.0), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_seconds(5.0)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn stats_track_depth_and_throughput() {
        let mut q = EventQueue::new();
        for i in 0..4 {
            q.schedule(SimTime::from_seconds(i as f64), i);
        }
        q.pop();
        q.schedule(SimTime::from_seconds(9.0), 99);
        let stats = q.stats();
        assert_eq!(stats.scheduled, 5);
        assert_eq!(stats.popped, 1);
        assert_eq!(stats.max_depth, 4);
        assert_eq!(stats.pending, 4);
    }

    #[test]
    fn pop_batch_drains_one_instant_in_fifo_order() {
        let mut q = EventQueue::new();
        let t1 = SimTime::from_seconds(1.0);
        q.schedule(SimTime::from_seconds(2.0), "later");
        q.schedule(t1, "a");
        q.schedule(t1, "b");
        let (time, batch) = q.pop_batch().unwrap();
        assert_eq!(time, t1);
        assert_eq!(batch, vec!["a", "b"]);
        assert_eq!(q.len(), 1);
        let (time, batch) = q.pop_batch().unwrap();
        assert_eq!(time, SimTime::from_seconds(2.0));
        assert_eq!(batch, vec!["later"]);
        assert!(q.pop_batch().is_none());
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_seconds(2.0), "b");
        q.schedule(SimTime::from_seconds(4.0), "d");
        assert_eq!(q.pop().unwrap().1, "b");
        q.schedule(SimTime::from_seconds(1.0), "a");
        q.schedule(SimTime::from_seconds(3.0), "c");
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "c");
        assert_eq!(q.pop().unwrap().1, "d");
    }

    #[test]
    fn adaptive_resize_survives_dense_and_sparse_schedules() {
        // Dense: thousands of events inside one default bucket width.
        let mut q = EventQueue::new();
        for i in 0..4096u64 {
            q.schedule(SimTime::from_seconds(1e-9 * (i % 7) as f64), i);
        }
        let mut last = SimTime::ZERO;
        let mut count = 0;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            last = t;
            count += 1;
        }
        assert_eq!(count, 4096);
        // Sparse: events separated by millions of bucket widths.
        let mut q = EventQueue::with_bucket_width(1e-9);
        for i in (0..64u64).rev() {
            q.schedule(SimTime::from_seconds(i as f64), i);
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn zero_and_equal_times_fall_back_to_fifo() {
        let mut q = EventQueue::with_bucket_width(0.0); // clamped to default
        for i in 0..100 {
            q.schedule(SimTime::ZERO, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn heap_queue_matches_calendar_queue_on_interleaved_traffic() {
        let mut cal: EventQueue<usize> = EventQueue::new();
        let mut heap: HeapEventQueue<usize> = HeapEventQueue::new();
        let times = [3.0, 1.0, 1.0, 2.0, 0.5, 3.0, 1.0, 0.5];
        for (i, &t) in times.iter().enumerate() {
            cal.schedule(SimTime::from_seconds(t), i);
            heap.schedule(SimTime::from_seconds(t), i);
            if i % 3 == 2 {
                assert_eq!(cal.pop(), heap.pop());
            }
        }
        loop {
            let (a, b) = (cal.pop(), heap.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
        assert_eq!(cal.stats(), heap.stats());
    }
}
