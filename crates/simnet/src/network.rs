//! Cut-through network timing with per-directed-link occupancy.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use multipod_telemetry::{MetricId, Subsystem, Telemetry};
use multipod_topology::{ChipId, LinkClass, Multipod, Route, TopologyError};
use multipod_trace::{LinkTransferEvent, SpanCategory, SpanEvent, TraceSink, Track};

use crate::{NetworkError, SimTime};

/// Physical parameters of the ICI network.
///
/// Defaults are calibrated for TPU-v3 (Jouppi et al. 2020: ~656 Gb/s links,
/// microsecond-class hop latencies). They are *simulation* constants — the
/// reproduction targets the shape of the paper's scaling curves, not
/// absolute seconds.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// Per-direction bandwidth of one ICI link, bytes/second.
    pub link_bandwidth: f64,
    /// Propagation + switching latency of one intra-pod hop, seconds.
    /// Cross-pod and wrap links multiply this by their
    /// [`LinkClass::latency_multiplier`].
    pub hop_latency: f64,
    /// Fixed software/DMA overhead charged once per message, seconds.
    pub message_overhead: f64,
}

impl NetworkConfig {
    /// TPU-v3 interconnect constants.
    pub fn tpu_v3() -> NetworkConfig {
        NetworkConfig {
            link_bandwidth: 70.0e9,
            hop_latency: 1.0e-6,
            message_overhead: 1.5e-6,
        }
    }

    /// TPU-v4 projection: roughly doubled ICI bandwidth per link with
    /// similar latencies (used with
    /// `multipod_models::TpuV3::v4_projection` for the paper's DLRM
    /// footnote).
    pub fn tpu_v4() -> NetworkConfig {
        NetworkConfig {
            link_bandwidth: 140.0e9,
            hop_latency: 1.0e-6,
            message_overhead: 1.0e-6,
        }
    }
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig::tpu_v3()
    }
}

/// The outcome of a simulated transfer.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Transfer {
    /// When the last byte arrives at the destination.
    pub finish: SimTime,
    /// Links traversed.
    pub num_hops: usize,
    /// Bytes moved.
    pub bytes: u64,
}

/// Dense per-directed-link occupancy state.
///
/// Directed links are interned lazily into small integer ids the first
/// time a route touches them, so the per-transfer hot loop indexes flat
/// vectors instead of hashing `(from, to)` pairs three times per hop.
/// The interner survives topology mutations (chip ids are stable), which
/// keeps cumulative byte counters alive across fault campaigns exactly
/// like the old per-pair hash map did.
#[derive(Clone, Debug, Default)]
struct LinkTable {
    ids: HashMap<(u32, u32), u32>,
    /// Directed endpoints per id, for reverse lookups.
    endpoints: Vec<(u32, u32)>,
    /// When each link next becomes free. `SimTime::ZERO` means idle —
    /// equivalent to the link being absent from the old map, since every
    /// departure time is already `≥ start + overhead ≥ 0`.
    free: Vec<SimTime>,
    /// Cumulative bytes carried, across resets.
    bytes: Vec<u64>,
}

impl LinkTable {
    fn intern(&mut self, from: u32, to: u32) -> u32 {
        let next = self.endpoints.len() as u32;
        let id = *self.ids.entry((from, to)).or_insert(next);
        if id == next {
            self.endpoints.push((from, to));
            self.free.push(SimTime::ZERO);
            self.bytes.push(0);
        }
        id
    }

    fn reset_free(&mut self) {
        self.free.fill(SimTime::ZERO);
    }

    fn clear_bytes(&mut self) {
        self.bytes.fill(0);
    }
}

/// A fully memoized route: the hop vector plus everything the timing
/// loop would otherwise recompute per transfer — interned link ids, the
/// route-order latency sum, and per-hop trace classes.
///
/// Valid only for the [`Multipod::version`] it was built against;
/// [`Network::sync_topology`] drops every cached path on any topology
/// mutation, so a stale path can never time a transfer.
#[derive(Debug)]
struct CachedPath {
    route: Arc<Route>,
    /// Interned directed-link ids, in route order.
    links: Vec<u32>,
    /// `Σ hop_latency × class multiplier`, accumulated in route order
    /// (bit-identical to summing over `Route::link_classes`).
    latency: f64,
    /// Per-hop trace classification, for the trace sink.
    trace_classes: Vec<multipod_trace::LinkClass>,
}

/// The simulated interconnect: a [`Multipod`] plus per-directed-link
/// occupancy state.
///
/// The timing model is cut-through (wormhole) routing: a message's finish
/// time is `depart + Σ hop latencies + bytes / bandwidth`, where `depart`
/// waits for every link on the route to drain earlier traffic. Each link is
/// then held busy for the serialization time, which is what creates
/// contention between overlapping transfers (e.g. peer-hopping gradient
/// rings crossing model-parallel tiles, §3.3).
///
/// Repeated collective phases hit the memoized [`CachedPath`] state: after
/// the first iteration over a route, a transfer is one hash lookup plus a
/// walk over dense occupancy vectors — no route recomputation, no per-hop
/// adjacency queries, no allocation.
#[derive(Clone)]
pub struct Network {
    mesh: Multipod,
    config: NetworkConfig,
    links: LinkTable,
    /// Memoized mesh-preferred routes keyed by `(from, to)`, shared by
    /// handle so a cache hit never copies the hop vector.
    route_cache: HashMap<(u32, u32), Arc<CachedPath>>,
    /// Memoized caller-supplied routes (see [`Network::transfer_along`]),
    /// keyed by endpoints; multiple distinct routes between the same pair
    /// coexist and are matched by hop-vector equality.
    along_cache: HashMap<(u32, u32), Vec<Arc<CachedPath>>>,
    /// The [`Multipod::version`] the cached state was computed against.
    mesh_version: u64,
    sink: Option<Arc<dyn TraceSink>>,
    telemetry: Option<Arc<Telemetry>>,
}

impl fmt::Debug for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Network")
            .field("mesh", &self.mesh)
            .field("config", &self.config)
            .field("links", &self.links)
            .field("cached_routes", &self.route_cache.len())
            .field("traced", &self.sink.is_some())
            .field("observed", &self.telemetry.is_some())
            .finish()
    }
}

impl Network {
    /// Builds a quiescent network over `mesh`.
    pub fn new(mesh: Multipod, config: NetworkConfig) -> Network {
        let mesh_version = mesh.version();
        Network {
            mesh,
            config,
            links: LinkTable::default(),
            route_cache: HashMap::new(),
            along_cache: HashMap::new(),
            mesh_version,
            sink: None,
            telemetry: None,
        }
    }

    /// Attaches a trace sink; every subsequent transfer emits one
    /// [`LinkTransferEvent`] per traversed directed link.
    pub fn set_trace_sink(&mut self, sink: Arc<dyn TraceSink>) {
        self.sink = Some(sink);
    }

    /// Detaches the trace sink, restoring the zero-overhead path.
    pub fn clear_trace_sink(&mut self) {
        self.sink = None;
    }

    /// The attached sink, if any — collective schedules reuse it for their
    /// phase spans so one recorder sees the whole run.
    pub fn trace_sink(&self) -> Option<&Arc<dyn TraceSink>> {
        self.sink.as_ref()
    }

    /// Attaches a telemetry sink; every subsequent transfer records its
    /// per-link queueing delay, serialization time, and byte counts into
    /// the metrics registry.
    pub fn set_telemetry(&mut self, telemetry: Arc<Telemetry>) {
        self.telemetry = Some(telemetry);
    }

    /// Detaches the telemetry sink, restoring the zero-overhead path.
    pub fn clear_telemetry(&mut self) {
        self.telemetry = None;
    }

    /// The attached telemetry sink, if any — collective schedules reuse it
    /// for their per-phase α/β metrics so one registry sees the whole run.
    pub fn telemetry(&self) -> Option<&Arc<Telemetry>> {
        self.telemetry.as_ref()
    }

    fn classify(&self, class: LinkClass, from: ChipId, to: ChipId) -> multipod_trace::LinkClass {
        match class {
            LinkClass::IntraPod => {
                let a = self.mesh.coord_of(from);
                let b = self.mesh.coord_of(to);
                if a.y == b.y {
                    multipod_trace::LinkClass::MeshX
                } else {
                    multipod_trace::LinkClass::MeshY
                }
            }
            LinkClass::TorusWrap => multipod_trace::LinkClass::WrapY,
            LinkClass::CrossPodOptical => multipod_trace::LinkClass::CrossPod,
        }
    }

    /// The trace classification of the directed link `from → to`.
    pub fn trace_link_class(&self, from: ChipId, to: ChipId) -> multipod_trace::LinkClass {
        match self.mesh.link_between(from, to) {
            Some(class) => self.classify(class, from, to),
            None => multipod_trace::LinkClass::Unknown,
        }
    }

    /// The underlying topology.
    pub fn mesh(&self) -> &Multipod {
        &self.mesh
    }

    /// Mutable access to the topology (e.g. to fail links mid-simulation).
    ///
    /// Mutations are detected via [`Multipod::version`]: the next transfer
    /// notices the bump and drops cached routes and link occupancy, so a
    /// manual [`Network::reset`] is no longer required. Prefer
    /// [`Network::fail_link`] / [`Network::heal_link`] / ...
    /// [`Network::fail_chip`], which also emit fault trace spans.
    pub fn mesh_mut(&mut self) -> &mut Multipod {
        &mut self.mesh
    }

    /// Reconciles cached state with the mesh: when the topology has been
    /// mutated since the cache was built (its version counter moved), drops
    /// memoized paths and in-flight link occupancy. Called lazily at the
    /// start of every transfer, so callers mutating the mesh through
    /// [`Network::mesh_mut`] never observe stale routing.
    pub fn sync_topology(&mut self) {
        if self.mesh_version != self.mesh.version() {
            self.route_cache.clear();
            self.along_cache.clear();
            self.links.reset_free();
            self.mesh_version = self.mesh.version();
        }
    }

    fn emit_fault_span(&self, name: &str, at: SimTime, args: &[(&str, f64)]) {
        if let Some(sink) = &self.sink {
            let mut span = SpanEvent::new(Track::Sim, SpanCategory::Fault, name, at, at);
            for &(key, value) in args {
                span = span.with_arg(key, value);
            }
            sink.record_span(span);
        }
    }

    /// Fails the undirected link `a — b` at sim time `at`.
    ///
    /// Cached routes and occupancy are invalidated immediately, and a
    /// zero-duration `link-down` fault span is emitted (when the link was
    /// actually up and a sink is attached).
    pub fn fail_link(&mut self, a: ChipId, b: ChipId, at: SimTime) {
        let before = self.mesh.version();
        self.mesh.fail_link(a, b);
        if self.mesh.version() != before {
            self.sync_topology();
            self.emit_fault_span("link-down", at, &[("a", a.0 as f64), ("b", b.0 as f64)]);
        }
    }

    /// Heals the undirected link `a — b` at sim time `at`, emitting a
    /// `link-up` fault span when the link was actually down.
    pub fn heal_link(&mut self, a: ChipId, b: ChipId, at: SimTime) {
        let before = self.mesh.version();
        self.mesh.heal_link(a, b);
        if self.mesh.version() != before {
            self.sync_topology();
            self.emit_fault_span("link-up", at, &[("a", a.0 as f64), ("b", b.0 as f64)]);
        }
    }

    /// Takes a whole chip down at sim time `at` by failing every link
    /// incident to it, emitting a single `chip-down` fault span.
    pub fn fail_chip(&mut self, chip: ChipId, at: SimTime) {
        let before = self.mesh.version();
        self.mesh.fail_chip(chip);
        if self.mesh.version() != before {
            self.sync_topology();
            self.emit_fault_span("chip-down", at, &[("chip", chip.0 as f64)]);
        }
    }

    /// The physical parameters.
    pub fn config(&self) -> NetworkConfig {
        self.config
    }

    /// Forgets all in-flight occupancy (start of a new simulated step).
    /// Cumulative traffic statistics are kept; see
    /// [`Network::clear_traffic_stats`].
    pub fn reset(&mut self) {
        self.links.reset_free();
    }

    /// Clears the cumulative per-link byte counters.
    pub fn clear_traffic_stats(&mut self) {
        self.links.clear_bytes();
    }

    /// Cumulative bytes carried by the directed link `from → to`.
    pub fn link_traffic(&self, from: ChipId, to: ChipId) -> u64 {
        match self.links.ids.get(&(from.0, to.0)) {
            Some(&id) => self.links.bytes[id as usize],
            None => 0,
        }
    }

    /// Total bytes moved over X-direction links vs Y-direction links —
    /// the quantity behind §3.3's "the payload transferred along the
    /// X-dimension is 32 times less than the data transferred along the
    /// Y-dimension".
    pub fn traffic_by_dimension(&self) -> (u64, u64) {
        let mut x = 0u64;
        let mut y = 0u64;
        for (&(from, to), &bytes) in self.links.endpoints.iter().zip(&self.links.bytes) {
            let a = self.mesh.coord_of(ChipId(from));
            let b = self.mesh.coord_of(ChipId(to));
            if a.y == b.y {
                x += bytes;
            } else {
                y += bytes;
            }
        }
        (x, y)
    }

    /// Builds the memoized form of `route`: interned link ids, the
    /// route-order latency sum, and trace classes.
    ///
    /// # Errors
    ///
    /// [`NetworkError::Route`] when the route traverses a pair of chips
    /// with no live link between them (stale route on a mutated mesh).
    fn build_path(&mut self, route: Arc<Route>) -> Result<CachedPath, NetworkError> {
        let hops = route.num_hops();
        let mut links = Vec::with_capacity(hops);
        let mut trace_classes = Vec::with_capacity(hops);
        let mut latency = 0.0f64;
        for w in route.chips.windows(2) {
            let class = self
                .mesh
                .link_between(w[0], w[1])
                .ok_or(NetworkError::Route(TopologyError::NoRoute {
                    from: w[0],
                    to: w[1],
                }))?;
            latency += self.config.hop_latency * class.latency_multiplier();
            trace_classes.push(self.classify(class, w[0], w[1]));
            links.push(self.links.intern(w[0].0, w[1].0));
        }
        Ok(CachedPath {
            route,
            links,
            latency,
            trace_classes,
        })
    }

    /// The timing hot loop: reserves every link of a memoized path for
    /// one message and returns the transfer outcome. Touches only dense
    /// vectors — no hashing, no allocation.
    fn reserve(&mut self, path: &CachedPath, bytes: u64, start: SimTime) -> Transfer {
        let serialization = bytes as f64 / self.config.link_bandwidth;
        let mut depart = start + self.config.message_overhead;
        for &id in &path.links {
            depart = depart.max(self.links.free[id as usize]);
        }
        let finish = depart + path.latency + serialization;
        let busy_until = depart + serialization;
        for &id in &path.links {
            self.links.free[id as usize] = busy_until;
            self.links.bytes[id as usize] += bytes;
        }
        if let Some(sink) = &self.sink {
            // Cut-through: the message holds every link of the route for
            // the same serialization window, so each hop gets the same
            // [depart, busy_until] occupancy the contention model charged.
            for (i, w) in path.route.chips.windows(2).enumerate() {
                sink.record_link(LinkTransferEvent {
                    src: w[0].0,
                    dst: w[1].0,
                    class: path.trace_classes[i],
                    bytes,
                    start: depart,
                    end: busy_until,
                });
            }
        }
        if let Some(telemetry) = &self.telemetry {
            telemetry.inc_counter(MetricId::new(Subsystem::Simnet, "transfers"), 1);
            telemetry.inc_counter(
                MetricId::new(Subsystem::Simnet, "link_hops"),
                path.links.len() as u64,
            );
            telemetry.inc_counter(MetricId::new(Subsystem::Simnet, "payload_bytes"), bytes);
            // Queueing delay: how long the head flit waited for occupied
            // links beyond the fixed per-message overhead.
            telemetry.observe(
                MetricId::new(Subsystem::Simnet, "queueing_delay_seconds"),
                depart - (start + self.config.message_overhead),
            );
            telemetry.observe(
                MetricId::new(Subsystem::Simnet, "serialization_seconds"),
                serialization,
            );
        }
        Transfer {
            finish,
            num_hops: path.links.len(),
            bytes,
        }
    }

    /// Times a message of `bytes` from `from` to `to`, issued at `start`.
    ///
    /// A self-transfer (`from == to`) is a zero-cost fast path: nothing
    /// crosses the wire, so it completes at `start` regardless of size.
    ///
    /// # Errors
    ///
    /// * [`NetworkError::Route`] when no route exists (failed links).
    /// * [`NetworkError::EmptyTransfer`] when `bytes == 0` between
    ///   distinct chips — there is no message to time, and silently
    ///   charging α-cost for it has historically hidden schedule bugs.
    pub fn transfer(
        &mut self,
        from: ChipId,
        to: ChipId,
        bytes: u64,
        start: SimTime,
    ) -> Result<Transfer, NetworkError> {
        self.sync_topology();
        if from == to {
            return Ok(Transfer {
                finish: start,
                num_hops: 0,
                bytes,
            });
        }
        if bytes == 0 {
            return Err(NetworkError::EmptyTransfer { from, to });
        }
        let path = match self.route_cache.get(&(from.0, to.0)) {
            Some(path) => Arc::clone(path),
            None => {
                let route = Arc::new(self.mesh.route(from, to)?);
                let path = Arc::new(self.build_path(route)?);
                self.route_cache.insert((from.0, to.0), Arc::clone(&path));
                path
            }
        };
        Ok(self.reserve(&path, bytes, start))
    }

    /// Times a message along a caller-supplied route.
    ///
    /// The route is memoized on first use (keyed by its endpoints,
    /// disambiguated by hop-vector equality), so repeated collective
    /// phases over the same explicit routes reuse the interned link state
    /// just like [`Network::transfer`].
    ///
    /// An empty route (zero hops) is a zero-cost fast path completing at
    /// `start`.
    ///
    /// # Errors
    ///
    /// * [`NetworkError::Route`] when the route traverses chips with no
    ///   live link between them (it no longer matches the topology).
    /// * [`NetworkError::EmptyTransfer`] when `bytes == 0` over a
    ///   non-empty route.
    pub fn transfer_along(
        &mut self,
        route: &Route,
        bytes: u64,
        start: SimTime,
    ) -> Result<Transfer, NetworkError> {
        self.sync_topology();
        if route.num_hops() == 0 {
            return Ok(Transfer {
                finish: start,
                num_hops: 0,
                bytes,
            });
        }
        let from = route.chips[0];
        let to = route.chips[route.chips.len() - 1];
        if bytes == 0 {
            return Err(NetworkError::EmptyTransfer { from, to });
        }
        let key = (from.0, to.0);
        let cached = self
            .along_cache
            .get(&key)
            .and_then(|paths| paths.iter().find(|p| p.route.chips == route.chips))
            .map(Arc::clone);
        let path = match cached {
            Some(path) => path,
            None => {
                let path = Arc::new(self.build_path(Arc::new(route.clone()))?);
                self.along_cache
                    .entry(key)
                    .or_default()
                    .push(Arc::clone(&path));
                path
            }
        };
        Ok(self.reserve(&path, bytes, start))
    }

    /// Issues a batch of transfers at the same instant and returns the time
    /// the last one completes.
    ///
    /// Transfers are reserved in argument order, which makes contention
    /// resolution deterministic. Zero-byte messages (e.g. an all-to-all
    /// fan-out with nothing for some peer) are skipped as a zero-cost fast
    /// path: they put nothing on the wire, reserve no occupancy, and never
    /// extend the batch finish time.
    ///
    /// # Errors
    ///
    /// Fails if any non-empty message has no route.
    pub fn parallel_transfers(
        &mut self,
        messages: &[(ChipId, ChipId, u64)],
        start: SimTime,
    ) -> Result<SimTime, NetworkError> {
        let mut finish = start;
        for &(from, to, bytes) in messages {
            if bytes == 0 {
                continue;
            }
            let t = self.transfer(from, to, bytes, start)?;
            finish = finish.max(t.finish);
        }
        Ok(finish)
    }

    /// Pure (state-free) time for a contention-free message over `hops`
    /// intra-pod links; used by analytic fast paths and tests.
    pub fn uncontended_time(&self, hops: usize, bytes: u64) -> f64 {
        self.config.message_overhead
            + hops as f64 * self.config.hop_latency
            + bytes as f64 / self.config.link_bandwidth
    }

    /// Latency multiplier-aware hop latency of a single link.
    pub fn hop_latency(&self, class: LinkClass) -> f64 {
        self.config.hop_latency * class.latency_multiplier()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multipod_topology::{Coord, MultipodConfig};

    fn net(x: u32, y: u32) -> Network {
        Network::new(
            Multipod::new(MultipodConfig::mesh(x, y, true)),
            NetworkConfig::tpu_v3(),
        )
    }

    #[test]
    fn one_hop_transfer_time_matches_formula() {
        let mut n = net(4, 4);
        let t = n
            .transfer(ChipId(0), ChipId(1), 70_000_000, SimTime::ZERO)
            .unwrap();
        // 70 MB at 70 GB/s = 1 ms, plus 1 µs hop and 1.5 µs overhead.
        let expect = 1e-3 + 1e-6 + 1.5e-6;
        assert!((t.finish.seconds() - expect).abs() < 1e-12);
        assert_eq!(t.num_hops, 1);
    }

    #[test]
    fn multi_hop_adds_latency_not_serialization() {
        let mut a = net(8, 1);
        let t1 = a
            .transfer(ChipId(0), ChipId(1), 1_000_000, SimTime::ZERO)
            .unwrap();
        let mut b = net(8, 1);
        let t4 = b
            .transfer(ChipId(0), ChipId(4), 1_000_000, SimTime::ZERO)
            .unwrap();
        // Cut-through: 3 extra hops only add 3 µs of latency.
        assert!((t4.finish.seconds() - t1.finish.seconds() - 3e-6).abs() < 1e-12);
    }

    #[test]
    fn contention_serializes_same_link() {
        let mut n = net(4, 1);
        let bytes = 70_000_000u64; // 1 ms serialization
        let first = n
            .transfer(ChipId(0), ChipId(1), bytes, SimTime::ZERO)
            .unwrap();
        let second = n
            .transfer(ChipId(0), ChipId(1), bytes, SimTime::ZERO)
            .unwrap();
        assert!(second.finish.seconds() > first.finish.seconds() + 0.9e-3);
    }

    #[test]
    fn opposite_directions_do_not_contend() {
        let mut n = net(4, 1);
        let bytes = 70_000_000u64;
        let fwd = n
            .transfer(ChipId(0), ChipId(1), bytes, SimTime::ZERO)
            .unwrap();
        let bwd = n
            .transfer(ChipId(1), ChipId(0), bytes, SimTime::ZERO)
            .unwrap();
        assert!((fwd.finish.seconds() - bwd.finish.seconds()).abs() < 1e-12);
    }

    #[test]
    fn disjoint_links_run_in_parallel() {
        let mut n = net(8, 1);
        let msgs = vec![
            (ChipId(0), ChipId(1), 70_000_000u64),
            (ChipId(2), ChipId(3), 70_000_000u64),
            (ChipId(4), ChipId(5), 70_000_000u64),
        ];
        let finish = n.parallel_transfers(&msgs, SimTime::ZERO).unwrap();
        assert!(finish.seconds() < 1.1e-3);
    }

    #[test]
    fn cross_pod_links_cost_more_latency() {
        let mesh = Multipod::new(MultipodConfig::multipod(2));
        let mut n = Network::new(mesh, NetworkConfig::tpu_v3());
        let a = n.mesh().chip_at(Coord::new(31, 0));
        let b = n.mesh().chip_at(Coord::new(32, 0));
        let c = n.mesh().chip_at(Coord::new(30, 0));
        let cross = n.transfer(a, b, 1000, SimTime::ZERO).unwrap();
        n.reset();
        let intra = n.transfer(c, a, 1000, SimTime::ZERO).unwrap();
        assert!(cross.finish > intra.finish);
    }

    #[test]
    fn reset_clears_occupancy() {
        let mut n = net(2, 1);
        n.transfer(ChipId(0), ChipId(1), 700_000_000, SimTime::ZERO)
            .unwrap();
        n.reset();
        let t = n
            .transfer(ChipId(0), ChipId(1), 1000, SimTime::ZERO)
            .unwrap();
        assert!(t.finish.seconds() < 1e-4);
    }

    #[test]
    fn self_transfer_is_free() {
        let mut n = net(2, 2);
        let t = n
            .transfer(ChipId(0), ChipId(0), 12345, SimTime::from_seconds(1.0))
            .unwrap();
        assert_eq!(t.finish, SimTime::from_seconds(1.0));
        assert_eq!(t.num_hops, 0);
    }

    #[test]
    fn zero_byte_transfer_is_a_typed_error() {
        let mut n = net(4, 1);
        let err = n
            .transfer(ChipId(0), ChipId(1), 0, SimTime::ZERO)
            .unwrap_err();
        assert_eq!(
            err,
            NetworkError::EmptyTransfer {
                from: ChipId(0),
                to: ChipId(1)
            }
        );
        assert!(!err.is_no_route());
        // No occupancy was reserved: a follow-up message sees a free link.
        let t = n
            .transfer(ChipId(0), ChipId(1), 1000, SimTime::ZERO)
            .unwrap();
        assert!((t.finish.seconds() - n.uncontended_time(1, 1000)).abs() < 1e-15);
        // Same contract along an explicit route.
        let route = n.mesh().route(ChipId(0), ChipId(2)).unwrap();
        let err = n.transfer_along(&route, 0, SimTime::ZERO).unwrap_err();
        assert!(matches!(err, NetworkError::EmptyTransfer { .. }));
    }

    #[test]
    fn empty_route_is_a_zero_cost_fast_path() {
        let mut n = net(2, 2);
        let route = Route {
            chips: vec![ChipId(3)],
        };
        // Even with zero bytes: an empty route has nothing to reserve, so
        // it completes at `start` instead of erroring or emitting NaN
        // occupancy.
        let t = n
            .transfer_along(&route, 0, SimTime::from_seconds(2.0))
            .unwrap();
        assert_eq!(t.finish, SimTime::from_seconds(2.0));
        assert_eq!(t.num_hops, 0);
    }

    #[test]
    fn parallel_transfers_skip_zero_byte_messages() {
        let mut n = net(8, 1);
        let with_empty = vec![
            (ChipId(0), ChipId(1), 70_000u64),
            (ChipId(2), ChipId(3), 0u64),
            (ChipId(4), ChipId(5), 70_000u64),
        ];
        let finish = n.parallel_transfers(&with_empty, SimTime::ZERO).unwrap();
        let mut clean = net(8, 1);
        let without = vec![
            (ChipId(0), ChipId(1), 70_000u64),
            (ChipId(4), ChipId(5), 70_000u64),
        ];
        let expect = clean.parallel_transfers(&without, SimTime::ZERO).unwrap();
        assert_eq!(finish.seconds().to_bits(), expect.seconds().to_bits());
        // The skipped message reserved nothing on its link.
        let t = n
            .transfer(ChipId(2), ChipId(3), 1000, SimTime::ZERO)
            .unwrap();
        assert!((t.finish.seconds() - n.uncontended_time(1, 1000)).abs() < 1e-15);
        assert_eq!(n.link_traffic(ChipId(2), ChipId(3)), 1000);
    }

    #[test]
    fn stale_route_is_a_typed_error_not_a_panic() {
        let mesh = Multipod::new(MultipodConfig::mesh(3, 3, false));
        let mut n = Network::new(mesh, NetworkConfig::tpu_v3());
        let a = n.mesh().chip_at(Coord::new(0, 0));
        let far = n.mesh().chip_at(Coord::new(2, 2));
        // A route that jumps between non-adjacent chips never matches the
        // topology.
        let bogus = Route {
            chips: vec![a, far],
        };
        let err = n.transfer_along(&bogus, 100, SimTime::ZERO).unwrap_err();
        assert!(err.is_no_route());
    }

    #[test]
    fn transfer_along_memoizes_distinct_routes_per_endpoint_pair() {
        let mut n = net(3, 3);
        let direct = n.mesh().route(ChipId(0), ChipId(4)).unwrap();
        // A second, distinct route between the same endpoints.
        let detour = Route {
            chips: vec![ChipId(0), ChipId(3), ChipId(4)],
        };
        for _ in 0..3 {
            let a = n.transfer_along(&direct, 1000, SimTime::ZERO).unwrap();
            let b = n.transfer_along(&detour, 1000, SimTime::ZERO).unwrap();
            assert_eq!(a.num_hops, direct.num_hops());
            assert_eq!(b.num_hops, 2);
            n.reset();
        }
        // Both variants share the endpoint key in the memo table.
        assert_eq!(n.along_cache[&(0, 4)].len(), 2);
    }

    #[test]
    fn failed_link_reroutes_or_errors() {
        let mesh = Multipod::new(MultipodConfig::mesh(3, 3, false));
        let mut n = Network::new(mesh, NetworkConfig::tpu_v3());
        let a = n.mesh().chip_at(Coord::new(0, 0));
        let x_next = n.mesh().chip_at(Coord::new(1, 0));
        let dst = n.mesh().chip_at(Coord::new(1, 1));
        n.mesh_mut().fail_link(a, x_next);
        // X-first is blocked at the first hop; Y-then-X succeeds.
        let t = n.transfer(a, dst, 1000, SimTime::ZERO).unwrap();
        assert_eq!(t.num_hops, 2);
    }

    #[test]
    fn traffic_stats_accumulate_per_link() {
        let mut n = net(4, 1);
        n.transfer(ChipId(0), ChipId(1), 100, SimTime::ZERO)
            .unwrap();
        n.transfer(ChipId(0), ChipId(1), 50, SimTime::ZERO).unwrap();
        n.transfer(ChipId(0), ChipId(2), 10, SimTime::ZERO).unwrap();
        assert_eq!(n.link_traffic(ChipId(0), ChipId(1)), 160);
        assert_eq!(n.link_traffic(ChipId(1), ChipId(2)), 10);
        assert_eq!(n.link_traffic(ChipId(1), ChipId(0)), 0);
        let (x, y) = n.traffic_by_dimension();
        assert_eq!(x, 170);
        assert_eq!(y, 0);
        n.clear_traffic_stats();
        assert_eq!(n.link_traffic(ChipId(0), ChipId(1)), 0);
    }

    #[test]
    fn trace_sink_sees_per_link_occupancy() {
        use multipod_trace::Recorder;
        let mut n = net(4, 1);
        let recorder = Recorder::shared();
        n.set_trace_sink(recorder.clone());
        n.transfer(ChipId(0), ChipId(2), 70_000_000, SimTime::ZERO)
            .unwrap();
        // Cut-through: both hops of 0→1→2 are held for the same 1 ms
        // serialization window and each carries the full payload.
        let links = recorder.link_summaries();
        assert_eq!(links.len(), 2);
        for link in &links {
            assert_eq!(link.bytes, 70_000_000);
            assert_eq!(link.class, multipod_trace::LinkClass::MeshX);
            assert!((link.busy_seconds - 1e-3).abs() < 1e-9);
        }
        n.clear_trace_sink();
        n.transfer(ChipId(0), ChipId(1), 1000, SimTime::ZERO)
            .unwrap();
        assert_eq!(recorder.len(), 2, "detached sink must see nothing");
    }

    #[test]
    fn telemetry_sees_transfers_and_queueing_delay() {
        let mut n = net(4, 1);
        let telemetry = Telemetry::shared();
        n.set_telemetry(telemetry.clone());
        // Two back-to-back messages over the same link: the second queues
        // behind the first's serialization window.
        n.transfer(ChipId(0), ChipId(1), 70_000, SimTime::ZERO)
            .unwrap();
        n.transfer(ChipId(0), ChipId(1), 70_000, SimTime::ZERO)
            .unwrap();
        let snap = telemetry.snapshot();
        assert_eq!(
            snap.counter(&MetricId::new(Subsystem::Simnet, "transfers")),
            2
        );
        assert_eq!(
            snap.counter(&MetricId::new(Subsystem::Simnet, "link_hops")),
            2
        );
        assert_eq!(
            snap.counter(&MetricId::new(Subsystem::Simnet, "payload_bytes")),
            140_000
        );
        let delay = snap
            .histogram(&MetricId::new(Subsystem::Simnet, "queueing_delay_seconds"))
            .unwrap();
        assert_eq!(delay.count, 2);
        assert_eq!(delay.min, 0.0, "first message sees a free link");
        assert!(delay.max > 0.0, "second message must queue");
        n.clear_telemetry();
        n.transfer(ChipId(0), ChipId(1), 1000, SimTime::ZERO)
            .unwrap();
        assert_eq!(
            telemetry
                .snapshot()
                .counter(&MetricId::new(Subsystem::Simnet, "transfers")),
            2,
            "detached telemetry must see nothing"
        );
    }

    #[test]
    fn topology_mutation_invalidates_cached_state_automatically() {
        let mesh = Multipod::new(MultipodConfig::mesh(3, 3, false));
        let mut n = Network::new(mesh, NetworkConfig::tpu_v3());
        let a = n.mesh().chip_at(Coord::new(0, 0));
        let x_next = n.mesh().chip_at(Coord::new(1, 0));
        let dst = n.mesh().chip_at(Coord::new(1, 1));
        // Populate the route cache and the link occupancy on the X-first
        // route with a slow transfer.
        let direct = n.transfer(a, dst, 70_000_000, SimTime::ZERO).unwrap();
        assert_eq!(direct.num_hops, 2);
        // Mutate the mesh through raw access — no manual reset.
        n.mesh_mut().fail_link(a, x_next);
        let rerouted = n.transfer(a, dst, 1000, SimTime::ZERO).unwrap();
        assert_eq!(rerouted.num_hops, 2, "Y-then-X detour");
        // Occupancy was dropped with the stale routes, so the rerouted
        // message does not queue behind the earlier megabyte transfer.
        assert!(rerouted.finish.seconds() < 1e-4);
    }

    #[test]
    fn fail_and_heal_link_round_trip_with_fault_spans() {
        use multipod_trace::{Recorder, SpanCategory, TraceEvent};
        let mesh = Multipod::new(MultipodConfig::mesh(3, 3, false));
        let mut n = Network::new(mesh, NetworkConfig::tpu_v3());
        let recorder = Recorder::shared();
        n.set_trace_sink(recorder.clone());
        let a = n.mesh().chip_at(Coord::new(0, 0));
        let x_next = n.mesh().chip_at(Coord::new(1, 0));
        n.fail_link(a, x_next, SimTime::from_seconds(1.0));
        // Idempotent: failing an already-failed link emits nothing.
        n.fail_link(a, x_next, SimTime::from_seconds(2.0));
        assert_eq!(n.mesh().failed_links().len(), 1);
        n.heal_link(a, x_next, SimTime::from_seconds(3.0));
        assert!(n.mesh().failed_links().is_empty());
        let spans: Vec<_> = recorder
            .events()
            .into_iter()
            .filter_map(|e| match e {
                TraceEvent::Span(s) if s.category == SpanCategory::Fault => Some(s.name),
                _ => None,
            })
            .collect();
        assert_eq!(spans, vec!["link-down".to_string(), "link-up".to_string()]);
    }

    #[test]
    fn fail_chip_isolates_and_traces() {
        use multipod_trace::Recorder;
        let mesh = Multipod::new(MultipodConfig::mesh(3, 3, false));
        let mut n = Network::new(mesh, NetworkConfig::tpu_v3());
        let recorder = Recorder::shared();
        n.set_trace_sink(recorder.clone());
        let victim = n.mesh().chip_at(Coord::new(1, 1));
        n.fail_chip(victim, SimTime::ZERO);
        assert!(n.mesh().is_isolated(victim));
        let corner = n.mesh().chip_at(Coord::new(0, 0));
        assert!(n.transfer(corner, victim, 100, SimTime::ZERO).is_err());
        // Traffic between survivors still routes (around the dead center).
        let far = n.mesh().chip_at(Coord::new(2, 2));
        assert!(n.transfer(corner, far, 100, SimTime::ZERO).is_ok());
        assert_eq!(recorder.span_totals().len(), 1, "one chip-down span");
    }

    #[test]
    fn uncontended_time_formula() {
        let n = net(2, 2);
        let t = n.uncontended_time(3, 70_000_000);
        assert!((t - (1.5e-6 + 3e-6 + 1e-3)).abs() < 1e-12);
    }
}
