//! Cut-through network timing with per-directed-link occupancy.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use multipod_telemetry::{MetricId, Subsystem, Telemetry};
use multipod_topology::{ChipId, LinkClass, Multipod, Route, TopologyError};
use multipod_trace::{LinkTransferEvent, SpanCategory, SpanEvent, TraceSink, Track};

use crate::SimTime;

/// Physical parameters of the ICI network.
///
/// Defaults are calibrated for TPU-v3 (Jouppi et al. 2020: ~656 Gb/s links,
/// microsecond-class hop latencies). They are *simulation* constants — the
/// reproduction targets the shape of the paper's scaling curves, not
/// absolute seconds.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// Per-direction bandwidth of one ICI link, bytes/second.
    pub link_bandwidth: f64,
    /// Propagation + switching latency of one intra-pod hop, seconds.
    /// Cross-pod and wrap links multiply this by their
    /// [`LinkClass::latency_multiplier`].
    pub hop_latency: f64,
    /// Fixed software/DMA overhead charged once per message, seconds.
    pub message_overhead: f64,
}

impl NetworkConfig {
    /// TPU-v3 interconnect constants.
    pub fn tpu_v3() -> NetworkConfig {
        NetworkConfig {
            link_bandwidth: 70.0e9,
            hop_latency: 1.0e-6,
            message_overhead: 1.5e-6,
        }
    }

    /// TPU-v4 projection: roughly doubled ICI bandwidth per link with
    /// similar latencies (used with
    /// `multipod_models::TpuV3::v4_projection` for the paper's DLRM
    /// footnote).
    pub fn tpu_v4() -> NetworkConfig {
        NetworkConfig {
            link_bandwidth: 140.0e9,
            hop_latency: 1.0e-6,
            message_overhead: 1.0e-6,
        }
    }
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig::tpu_v3()
    }
}

/// The outcome of a simulated transfer.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Transfer {
    /// When the last byte arrives at the destination.
    pub finish: SimTime,
    /// Links traversed.
    pub num_hops: usize,
    /// Bytes moved.
    pub bytes: u64,
}

/// The simulated interconnect: a [`Multipod`] plus per-directed-link
/// occupancy state.
///
/// The timing model is cut-through (wormhole) routing: a message's finish
/// time is `depart + Σ hop latencies + bytes / bandwidth`, where `depart`
/// waits for every link on the route to drain earlier traffic. Each link is
/// then held busy for the serialization time, which is what creates
/// contention between overlapping transfers (e.g. peer-hopping gradient
/// rings crossing model-parallel tiles, §3.3).
#[derive(Clone)]
pub struct Network {
    mesh: Multipod,
    config: NetworkConfig,
    link_free: HashMap<(u32, u32), SimTime>,
    link_bytes: HashMap<(u32, u32), u64>,
    /// Memoized routes keyed by `(from, to)`, shared by handle so a cache
    /// hit never copies the hop vector. Valid only while `mesh_version`
    /// matches the mesh; [`Network::sync_topology`] drops it on any
    /// topology mutation.
    route_cache: HashMap<(u32, u32), Arc<Route>>,
    /// The [`Multipod::version`] the cached state was computed against.
    mesh_version: u64,
    sink: Option<Arc<dyn TraceSink>>,
    telemetry: Option<Arc<Telemetry>>,
}

impl fmt::Debug for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Network")
            .field("mesh", &self.mesh)
            .field("config", &self.config)
            .field("link_free", &self.link_free)
            .field("link_bytes", &self.link_bytes)
            .field("traced", &self.sink.is_some())
            .field("observed", &self.telemetry.is_some())
            .finish()
    }
}

impl Network {
    /// Builds a quiescent network over `mesh`.
    pub fn new(mesh: Multipod, config: NetworkConfig) -> Network {
        let mesh_version = mesh.version();
        Network {
            mesh,
            config,
            link_free: HashMap::new(),
            link_bytes: HashMap::new(),
            route_cache: HashMap::new(),
            mesh_version,
            sink: None,
            telemetry: None,
        }
    }

    /// Attaches a trace sink; every subsequent transfer emits one
    /// [`LinkTransferEvent`] per traversed directed link.
    pub fn set_trace_sink(&mut self, sink: Arc<dyn TraceSink>) {
        self.sink = Some(sink);
    }

    /// Detaches the trace sink, restoring the zero-overhead path.
    pub fn clear_trace_sink(&mut self) {
        self.sink = None;
    }

    /// The attached sink, if any — collective schedules reuse it for their
    /// phase spans so one recorder sees the whole run.
    pub fn trace_sink(&self) -> Option<&Arc<dyn TraceSink>> {
        self.sink.as_ref()
    }

    /// Attaches a telemetry sink; every subsequent transfer records its
    /// per-link queueing delay, serialization time, and byte counts into
    /// the metrics registry.
    pub fn set_telemetry(&mut self, telemetry: Arc<Telemetry>) {
        self.telemetry = Some(telemetry);
    }

    /// Detaches the telemetry sink, restoring the zero-overhead path.
    pub fn clear_telemetry(&mut self) {
        self.telemetry = None;
    }

    /// The attached telemetry sink, if any — collective schedules reuse it
    /// for their per-phase α/β metrics so one registry sees the whole run.
    pub fn telemetry(&self) -> Option<&Arc<Telemetry>> {
        self.telemetry.as_ref()
    }

    /// The trace classification of the directed link `from → to`.
    pub fn trace_link_class(&self, from: ChipId, to: ChipId) -> multipod_trace::LinkClass {
        match self.mesh.link_between(from, to) {
            Some(LinkClass::IntraPod) => {
                let a = self.mesh.coord_of(from);
                let b = self.mesh.coord_of(to);
                if a.y == b.y {
                    multipod_trace::LinkClass::MeshX
                } else {
                    multipod_trace::LinkClass::MeshY
                }
            }
            Some(LinkClass::TorusWrap) => multipod_trace::LinkClass::WrapY,
            Some(LinkClass::CrossPodOptical) => multipod_trace::LinkClass::CrossPod,
            None => multipod_trace::LinkClass::Unknown,
        }
    }

    /// The underlying topology.
    pub fn mesh(&self) -> &Multipod {
        &self.mesh
    }

    /// Mutable access to the topology (e.g. to fail links mid-simulation).
    ///
    /// Mutations are detected via [`Multipod::version`]: the next transfer
    /// notices the bump and drops cached routes and link occupancy, so a
    /// manual [`Network::reset`] is no longer required. Prefer
    /// [`Network::fail_link`] / [`Network::heal_link`] / ...
    /// [`Network::fail_chip`], which also emit fault trace spans.
    pub fn mesh_mut(&mut self) -> &mut Multipod {
        &mut self.mesh
    }

    /// Reconciles cached state with the mesh: when the topology has been
    /// mutated since the cache was built (its version counter moved), drops
    /// memoized routes and in-flight link occupancy. Called lazily at the
    /// start of every transfer, so callers mutating the mesh through
    /// [`Network::mesh_mut`] never observe stale routing.
    pub fn sync_topology(&mut self) {
        if self.mesh_version != self.mesh.version() {
            self.route_cache.clear();
            self.link_free.clear();
            self.mesh_version = self.mesh.version();
        }
    }

    fn emit_fault_span(&self, name: &str, at: SimTime, args: &[(&str, f64)]) {
        if let Some(sink) = &self.sink {
            let mut span = SpanEvent::new(Track::Sim, SpanCategory::Fault, name, at, at);
            for &(key, value) in args {
                span = span.with_arg(key, value);
            }
            sink.record_span(span);
        }
    }

    /// Fails the undirected link `a — b` at sim time `at`.
    ///
    /// Cached routes and occupancy are invalidated immediately, and a
    /// zero-duration `link-down` fault span is emitted (when the link was
    /// actually up and a sink is attached).
    pub fn fail_link(&mut self, a: ChipId, b: ChipId, at: SimTime) {
        let before = self.mesh.version();
        self.mesh.fail_link(a, b);
        if self.mesh.version() != before {
            self.sync_topology();
            self.emit_fault_span("link-down", at, &[("a", a.0 as f64), ("b", b.0 as f64)]);
        }
    }

    /// Heals the undirected link `a — b` at sim time `at`, emitting a
    /// `link-up` fault span when the link was actually down.
    pub fn heal_link(&mut self, a: ChipId, b: ChipId, at: SimTime) {
        let before = self.mesh.version();
        self.mesh.heal_link(a, b);
        if self.mesh.version() != before {
            self.sync_topology();
            self.emit_fault_span("link-up", at, &[("a", a.0 as f64), ("b", b.0 as f64)]);
        }
    }

    /// Takes a whole chip down at sim time `at` by failing every link
    /// incident to it, emitting a single `chip-down` fault span.
    pub fn fail_chip(&mut self, chip: ChipId, at: SimTime) {
        let before = self.mesh.version();
        self.mesh.fail_chip(chip);
        if self.mesh.version() != before {
            self.sync_topology();
            self.emit_fault_span("chip-down", at, &[("chip", chip.0 as f64)]);
        }
    }

    /// The physical parameters.
    pub fn config(&self) -> NetworkConfig {
        self.config
    }

    /// Forgets all in-flight occupancy (start of a new simulated step).
    /// Cumulative traffic statistics are kept; see
    /// [`Network::clear_traffic_stats`].
    pub fn reset(&mut self) {
        self.link_free.clear();
    }

    /// Clears the cumulative per-link byte counters.
    pub fn clear_traffic_stats(&mut self) {
        self.link_bytes.clear();
    }

    /// Cumulative bytes carried by the directed link `from → to`.
    pub fn link_traffic(&self, from: ChipId, to: ChipId) -> u64 {
        self.link_bytes.get(&(from.0, to.0)).copied().unwrap_or(0)
    }

    /// Total bytes moved over X-direction links vs Y-direction links —
    /// the quantity behind §3.3's "the payload transferred along the
    /// X-dimension is 32 times less than the data transferred along the
    /// Y-dimension".
    pub fn traffic_by_dimension(&self) -> (u64, u64) {
        let mut x = 0u64;
        let mut y = 0u64;
        for (&(from, to), &bytes) in &self.link_bytes {
            let a = self.mesh.coord_of(ChipId(from));
            let b = self.mesh.coord_of(ChipId(to));
            if a.y == b.y {
                x += bytes;
            } else {
                y += bytes;
            }
        }
        (x, y)
    }

    /// Times a message of `bytes` from `from` to `to`, issued at `start`.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::NoRoute`] when no route exists (failed
    /// links).
    pub fn transfer(
        &mut self,
        from: ChipId,
        to: ChipId,
        bytes: u64,
        start: SimTime,
    ) -> Result<Transfer, TopologyError> {
        self.sync_topology();
        let route = match self.route_cache.get(&(from.0, to.0)) {
            Some(route) => Arc::clone(route),
            None => {
                let route = Arc::new(self.mesh.route(from, to)?);
                self.route_cache.insert((from.0, to.0), Arc::clone(&route));
                route
            }
        };
        Ok(self.transfer_along(&route, bytes, start))
    }

    /// Times a message along a precomputed route.
    ///
    /// # Panics
    ///
    /// Panics if the route does not match the current topology.
    pub fn transfer_along(&mut self, route: &Route, bytes: u64, start: SimTime) -> Transfer {
        self.sync_topology();
        if route.num_hops() == 0 {
            return Transfer {
                finish: start,
                num_hops: 0,
                bytes,
            };
        }
        let serialization = bytes as f64 / self.config.link_bandwidth;
        let mut depart = start + self.config.message_overhead;
        for w in route.chips.windows(2) {
            if let Some(free) = self.link_free.get(&(w[0].0, w[1].0)) {
                depart = depart.max(*free);
            }
        }
        let latency: f64 = route
            .link_classes(&self.mesh)
            .iter()
            .map(|c| self.config.hop_latency * c.latency_multiplier())
            .sum();
        let finish = depart + latency + serialization;
        let busy_until = depart + serialization;
        for w in route.chips.windows(2) {
            self.link_free.insert((w[0].0, w[1].0), busy_until);
            *self.link_bytes.entry((w[0].0, w[1].0)).or_insert(0) += bytes;
        }
        if let Some(sink) = &self.sink {
            // Cut-through: the message holds every link of the route for
            // the same serialization window, so each hop gets the same
            // [depart, busy_until] occupancy the contention model charged.
            for w in route.chips.windows(2) {
                sink.record_link(LinkTransferEvent {
                    src: w[0].0,
                    dst: w[1].0,
                    class: self.trace_link_class(w[0], w[1]),
                    bytes,
                    start: depart,
                    end: busy_until,
                });
            }
        }
        if let Some(telemetry) = &self.telemetry {
            telemetry.inc_counter(MetricId::new(Subsystem::Simnet, "transfers"), 1);
            telemetry.inc_counter(
                MetricId::new(Subsystem::Simnet, "link_hops"),
                route.num_hops() as u64,
            );
            telemetry.inc_counter(MetricId::new(Subsystem::Simnet, "payload_bytes"), bytes);
            // Queueing delay: how long the head flit waited for occupied
            // links beyond the fixed per-message overhead.
            telemetry.observe(
                MetricId::new(Subsystem::Simnet, "queueing_delay_seconds"),
                depart - (start + self.config.message_overhead),
            );
            telemetry.observe(
                MetricId::new(Subsystem::Simnet, "serialization_seconds"),
                serialization,
            );
        }
        Transfer {
            finish,
            num_hops: route.num_hops(),
            bytes,
        }
    }

    /// Issues a batch of transfers at the same instant and returns the time
    /// the last one completes.
    ///
    /// Transfers are reserved in argument order, which makes contention
    /// resolution deterministic.
    ///
    /// # Errors
    ///
    /// Fails if any message has no route.
    pub fn parallel_transfers(
        &mut self,
        messages: &[(ChipId, ChipId, u64)],
        start: SimTime,
    ) -> Result<SimTime, TopologyError> {
        let mut finish = start;
        for &(from, to, bytes) in messages {
            let t = self.transfer(from, to, bytes, start)?;
            finish = finish.max(t.finish);
        }
        Ok(finish)
    }

    /// Pure (state-free) time for a contention-free message over `hops`
    /// intra-pod links; used by analytic fast paths and tests.
    pub fn uncontended_time(&self, hops: usize, bytes: u64) -> f64 {
        self.config.message_overhead
            + hops as f64 * self.config.hop_latency
            + bytes as f64 / self.config.link_bandwidth
    }

    /// Latency multiplier-aware hop latency of a single link.
    pub fn hop_latency(&self, class: LinkClass) -> f64 {
        self.config.hop_latency * class.latency_multiplier()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multipod_topology::{Coord, MultipodConfig};

    fn net(x: u32, y: u32) -> Network {
        Network::new(
            Multipod::new(MultipodConfig::mesh(x, y, true)),
            NetworkConfig::tpu_v3(),
        )
    }

    #[test]
    fn one_hop_transfer_time_matches_formula() {
        let mut n = net(4, 4);
        let t = n
            .transfer(ChipId(0), ChipId(1), 70_000_000, SimTime::ZERO)
            .unwrap();
        // 70 MB at 70 GB/s = 1 ms, plus 1 µs hop and 1.5 µs overhead.
        let expect = 1e-3 + 1e-6 + 1.5e-6;
        assert!((t.finish.seconds() - expect).abs() < 1e-12);
        assert_eq!(t.num_hops, 1);
    }

    #[test]
    fn multi_hop_adds_latency_not_serialization() {
        let mut a = net(8, 1);
        let t1 = a
            .transfer(ChipId(0), ChipId(1), 1_000_000, SimTime::ZERO)
            .unwrap();
        let mut b = net(8, 1);
        let t4 = b
            .transfer(ChipId(0), ChipId(4), 1_000_000, SimTime::ZERO)
            .unwrap();
        // Cut-through: 3 extra hops only add 3 µs of latency.
        assert!((t4.finish.seconds() - t1.finish.seconds() - 3e-6).abs() < 1e-12);
    }

    #[test]
    fn contention_serializes_same_link() {
        let mut n = net(4, 1);
        let bytes = 70_000_000u64; // 1 ms serialization
        let first = n
            .transfer(ChipId(0), ChipId(1), bytes, SimTime::ZERO)
            .unwrap();
        let second = n
            .transfer(ChipId(0), ChipId(1), bytes, SimTime::ZERO)
            .unwrap();
        assert!(second.finish.seconds() > first.finish.seconds() + 0.9e-3);
    }

    #[test]
    fn opposite_directions_do_not_contend() {
        let mut n = net(4, 1);
        let bytes = 70_000_000u64;
        let fwd = n
            .transfer(ChipId(0), ChipId(1), bytes, SimTime::ZERO)
            .unwrap();
        let bwd = n
            .transfer(ChipId(1), ChipId(0), bytes, SimTime::ZERO)
            .unwrap();
        assert!((fwd.finish.seconds() - bwd.finish.seconds()).abs() < 1e-12);
    }

    #[test]
    fn disjoint_links_run_in_parallel() {
        let mut n = net(8, 1);
        let msgs = vec![
            (ChipId(0), ChipId(1), 70_000_000u64),
            (ChipId(2), ChipId(3), 70_000_000u64),
            (ChipId(4), ChipId(5), 70_000_000u64),
        ];
        let finish = n.parallel_transfers(&msgs, SimTime::ZERO).unwrap();
        assert!(finish.seconds() < 1.1e-3);
    }

    #[test]
    fn cross_pod_links_cost_more_latency() {
        let mesh = Multipod::new(MultipodConfig::multipod(2));
        let mut n = Network::new(mesh, NetworkConfig::tpu_v3());
        let a = n.mesh().chip_at(Coord::new(31, 0));
        let b = n.mesh().chip_at(Coord::new(32, 0));
        let c = n.mesh().chip_at(Coord::new(30, 0));
        let cross = n.transfer(a, b, 1000, SimTime::ZERO).unwrap();
        n.reset();
        let intra = n.transfer(c, a, 1000, SimTime::ZERO).unwrap();
        assert!(cross.finish > intra.finish);
    }

    #[test]
    fn reset_clears_occupancy() {
        let mut n = net(2, 1);
        n.transfer(ChipId(0), ChipId(1), 700_000_000, SimTime::ZERO)
            .unwrap();
        n.reset();
        let t = n
            .transfer(ChipId(0), ChipId(1), 1000, SimTime::ZERO)
            .unwrap();
        assert!(t.finish.seconds() < 1e-4);
    }

    #[test]
    fn self_transfer_is_free() {
        let mut n = net(2, 2);
        let t = n
            .transfer(ChipId(0), ChipId(0), 12345, SimTime::from_seconds(1.0))
            .unwrap();
        assert_eq!(t.finish, SimTime::from_seconds(1.0));
        assert_eq!(t.num_hops, 0);
    }

    #[test]
    fn failed_link_reroutes_or_errors() {
        let mesh = Multipod::new(MultipodConfig::mesh(3, 3, false));
        let mut n = Network::new(mesh, NetworkConfig::tpu_v3());
        let a = n.mesh().chip_at(Coord::new(0, 0));
        let x_next = n.mesh().chip_at(Coord::new(1, 0));
        let dst = n.mesh().chip_at(Coord::new(1, 1));
        n.mesh_mut().fail_link(a, x_next);
        // X-first is blocked at the first hop; Y-then-X succeeds.
        let t = n.transfer(a, dst, 1000, SimTime::ZERO).unwrap();
        assert_eq!(t.num_hops, 2);
    }

    #[test]
    fn traffic_stats_accumulate_per_link() {
        let mut n = net(4, 1);
        n.transfer(ChipId(0), ChipId(1), 100, SimTime::ZERO)
            .unwrap();
        n.transfer(ChipId(0), ChipId(1), 50, SimTime::ZERO).unwrap();
        n.transfer(ChipId(0), ChipId(2), 10, SimTime::ZERO).unwrap();
        assert_eq!(n.link_traffic(ChipId(0), ChipId(1)), 160);
        assert_eq!(n.link_traffic(ChipId(1), ChipId(2)), 10);
        assert_eq!(n.link_traffic(ChipId(1), ChipId(0)), 0);
        let (x, y) = n.traffic_by_dimension();
        assert_eq!(x, 170);
        assert_eq!(y, 0);
        n.clear_traffic_stats();
        assert_eq!(n.link_traffic(ChipId(0), ChipId(1)), 0);
    }

    #[test]
    fn trace_sink_sees_per_link_occupancy() {
        use multipod_trace::Recorder;
        let mut n = net(4, 1);
        let recorder = Recorder::shared();
        n.set_trace_sink(recorder.clone());
        n.transfer(ChipId(0), ChipId(2), 70_000_000, SimTime::ZERO)
            .unwrap();
        // Cut-through: both hops of 0→1→2 are held for the same 1 ms
        // serialization window and each carries the full payload.
        let links = recorder.link_summaries();
        assert_eq!(links.len(), 2);
        for link in &links {
            assert_eq!(link.bytes, 70_000_000);
            assert_eq!(link.class, multipod_trace::LinkClass::MeshX);
            assert!((link.busy_seconds - 1e-3).abs() < 1e-9);
        }
        n.clear_trace_sink();
        n.transfer(ChipId(0), ChipId(1), 1000, SimTime::ZERO)
            .unwrap();
        assert_eq!(recorder.len(), 2, "detached sink must see nothing");
    }

    #[test]
    fn telemetry_sees_transfers_and_queueing_delay() {
        let mut n = net(4, 1);
        let telemetry = Telemetry::shared();
        n.set_telemetry(telemetry.clone());
        // Two back-to-back messages over the same link: the second queues
        // behind the first's serialization window.
        n.transfer(ChipId(0), ChipId(1), 70_000, SimTime::ZERO)
            .unwrap();
        n.transfer(ChipId(0), ChipId(1), 70_000, SimTime::ZERO)
            .unwrap();
        let snap = telemetry.snapshot();
        assert_eq!(
            snap.counter(&MetricId::new(Subsystem::Simnet, "transfers")),
            2
        );
        assert_eq!(
            snap.counter(&MetricId::new(Subsystem::Simnet, "link_hops")),
            2
        );
        assert_eq!(
            snap.counter(&MetricId::new(Subsystem::Simnet, "payload_bytes")),
            140_000
        );
        let delay = snap
            .histogram(&MetricId::new(Subsystem::Simnet, "queueing_delay_seconds"))
            .unwrap();
        assert_eq!(delay.count, 2);
        assert_eq!(delay.min, 0.0, "first message sees a free link");
        assert!(delay.max > 0.0, "second message must queue");
        n.clear_telemetry();
        n.transfer(ChipId(0), ChipId(1), 1000, SimTime::ZERO)
            .unwrap();
        assert_eq!(
            telemetry
                .snapshot()
                .counter(&MetricId::new(Subsystem::Simnet, "transfers")),
            2,
            "detached telemetry must see nothing"
        );
    }

    #[test]
    fn topology_mutation_invalidates_cached_state_automatically() {
        let mesh = Multipod::new(MultipodConfig::mesh(3, 3, false));
        let mut n = Network::new(mesh, NetworkConfig::tpu_v3());
        let a = n.mesh().chip_at(Coord::new(0, 0));
        let x_next = n.mesh().chip_at(Coord::new(1, 0));
        let dst = n.mesh().chip_at(Coord::new(1, 1));
        // Populate the route cache and the link occupancy on the X-first
        // route with a slow transfer.
        let direct = n.transfer(a, dst, 70_000_000, SimTime::ZERO).unwrap();
        assert_eq!(direct.num_hops, 2);
        // Mutate the mesh through raw access — no manual reset.
        n.mesh_mut().fail_link(a, x_next);
        let rerouted = n.transfer(a, dst, 1000, SimTime::ZERO).unwrap();
        assert_eq!(rerouted.num_hops, 2, "Y-then-X detour");
        // Occupancy was dropped with the stale routes, so the rerouted
        // message does not queue behind the earlier megabyte transfer.
        assert!(rerouted.finish.seconds() < 1e-4);
    }

    #[test]
    fn fail_and_heal_link_round_trip_with_fault_spans() {
        use multipod_trace::{Recorder, SpanCategory, TraceEvent};
        let mesh = Multipod::new(MultipodConfig::mesh(3, 3, false));
        let mut n = Network::new(mesh, NetworkConfig::tpu_v3());
        let recorder = Recorder::shared();
        n.set_trace_sink(recorder.clone());
        let a = n.mesh().chip_at(Coord::new(0, 0));
        let x_next = n.mesh().chip_at(Coord::new(1, 0));
        n.fail_link(a, x_next, SimTime::from_seconds(1.0));
        // Idempotent: failing an already-failed link emits nothing.
        n.fail_link(a, x_next, SimTime::from_seconds(2.0));
        assert_eq!(n.mesh().failed_links().len(), 1);
        n.heal_link(a, x_next, SimTime::from_seconds(3.0));
        assert!(n.mesh().failed_links().is_empty());
        let spans: Vec<_> = recorder
            .events()
            .into_iter()
            .filter_map(|e| match e {
                TraceEvent::Span(s) if s.category == SpanCategory::Fault => Some(s.name),
                _ => None,
            })
            .collect();
        assert_eq!(spans, vec!["link-down".to_string(), "link-up".to_string()]);
    }

    #[test]
    fn fail_chip_isolates_and_traces() {
        use multipod_trace::Recorder;
        let mesh = Multipod::new(MultipodConfig::mesh(3, 3, false));
        let mut n = Network::new(mesh, NetworkConfig::tpu_v3());
        let recorder = Recorder::shared();
        n.set_trace_sink(recorder.clone());
        let victim = n.mesh().chip_at(Coord::new(1, 1));
        n.fail_chip(victim, SimTime::ZERO);
        assert!(n.mesh().is_isolated(victim));
        let corner = n.mesh().chip_at(Coord::new(0, 0));
        assert!(n.transfer(corner, victim, 100, SimTime::ZERO).is_err());
        // Traffic between survivors still routes (around the dead center).
        let far = n.mesh().chip_at(Coord::new(2, 2));
        assert!(n.transfer(corner, far, 100, SimTime::ZERO).is_ok());
        assert_eq!(recorder.span_totals().len(), 1, "one chip-down span");
    }

    #[test]
    fn uncontended_time_formula() {
        let n = net(2, 2);
        let t = n.uncontended_time(3, 70_000_000);
        assert!((t - (1.5e-6 + 3e-6 + 1e-3)).abs() < 1e-12);
    }
}
