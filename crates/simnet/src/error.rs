//! Typed errors for network transfer timing.

use multipod_topology::{ChipId, TopologyError};

/// Why a transfer could not be timed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetworkError {
    /// No route exists (or a supplied route no longer matches the
    /// topology — e.g. it traverses a failed link).
    Route(TopologyError),
    /// A transfer of zero bytes or over an empty route: there is no
    /// message to time, so the contention math has nothing to reserve.
    /// Callers that legitimately produce empty messages (all-to-all
    /// fan-outs with uneven shards) should skip them instead; batch APIs
    /// like [`crate::Network::parallel_transfers`] do so automatically.
    EmptyTransfer {
        /// Source chip.
        from: ChipId,
        /// Destination chip.
        to: ChipId,
    },
}

impl NetworkError {
    /// Whether this error is a routing failure caused by the current
    /// (possibly degraded) topology — the condition fault-tolerant
    /// callers retry or degrade around.
    pub fn is_no_route(&self) -> bool {
        matches!(self, NetworkError::Route(TopologyError::NoRoute { .. }))
    }
}

impl std::fmt::Display for NetworkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetworkError::Route(e) => write!(f, "routing failed: {e}"),
            NetworkError::EmptyTransfer { from, to } => {
                write!(
                    f,
                    "empty transfer {} -> {}: zero bytes or empty route",
                    from.0, to.0
                )
            }
        }
    }
}

impl std::error::Error for NetworkError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetworkError::Route(e) => Some(e),
            NetworkError::EmptyTransfer { .. } => None,
        }
    }
}

impl From<TopologyError> for NetworkError {
    fn from(e: TopologyError) -> Self {
        NetworkError::Route(e)
    }
}
