//! Property tests: weight-update sharding is numerically identical to the
//! replicated update for every optimizer, ring size and payload.

use multipod_collectives::Precision;
use multipod_optim::wus::{replicated_step, sharded_step};
use multipod_optim::{Lamb, Lars, Optimizer, SgdMomentum};
use multipod_simnet::{Network, NetworkConfig, SimTime};
use multipod_tensor::{Shape, Tensor, TensorRng};
use multipod_topology::{Multipod, MultipodConfig};
use proptest::prelude::*;

fn setup(n: u32) -> (Network, multipod_topology::Ring) {
    let mesh = Multipod::new(MultipodConfig::mesh(1, n, true));
    let net = Network::new(mesh, NetworkConfig::tpu_v3());
    let ring = net.mesh().y_ring(0);
    (net, ring)
}

fn check(make: impl Fn() -> Box<dyn Optimizer>, n: u32, chunk: usize, steps: usize, seed: u64) {
    let elems = chunk * n as usize;
    let mut rng = TensorRng::seed(seed);
    let w0 = rng.uniform(Shape::vector(elems), -1.0, 1.0);
    let grads: Vec<Vec<Tensor>> = (0..steps)
        .map(|_| {
            (0..n)
                .map(|_| rng.uniform(Shape::vector(elems), -0.2, 0.2))
                .collect()
        })
        .collect();

    let (mut net_r, ring_r) = setup(n);
    let mut opt_r = make();
    let mut w_r: Vec<Tensor> = (0..n).map(|_| w0.clone()).collect();
    for g in &grads {
        replicated_step(
            &mut net_r,
            &ring_r,
            opt_r.as_mut(),
            0,
            &mut w_r,
            g,
            Precision::F32,
            SimTime::ZERO,
        )
        .unwrap();
    }

    let (mut net_s, ring_s) = setup(n);
    let mut opt_s = make();
    let mut w_s: Vec<Tensor> = (0..n).map(|_| w0.clone()).collect();
    for g in &grads {
        sharded_step(
            &mut net_s,
            &ring_s,
            opt_s.as_mut(),
            0,
            &mut w_s,
            g,
            Precision::F32,
            SimTime::ZERO,
        )
        .unwrap();
    }

    for (a, b) in w_r.iter().zip(&w_s) {
        assert!(
            a.max_abs_diff(b) < 2e-4,
            "diverged by {} (n={n}, chunk={chunk}, steps={steps})",
            a.max_abs_diff(b)
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sgd_wus_equivalence(n in 2u32..7, chunk in 1usize..6, steps in 1usize..4, seed in 0u64..10_000) {
        check(|| Box::new(SgdMomentum::new(0.1, 0.8)), n, chunk * 2, steps, seed);
    }

    #[test]
    fn lars_wus_equivalence(n in 2u32..7, chunk in 1usize..6, steps in 1usize..4, seed in 0u64..10_000) {
        check(|| Box::new(Lars::new(0.1, 0.9, 1e-3)), n, chunk * 2, steps, seed);
    }

    #[test]
    fn lamb_wus_equivalence(n in 2u32..7, chunk in 1usize..6, steps in 1usize..4, seed in 0u64..10_000) {
        check(|| Box::new(Lamb::new(0.02, 0.01)), n, chunk * 2, steps, seed);
    }

    /// The schedule is monotone within warmup and within decay for any
    /// parameterization.
    #[test]
    fn schedules_are_piecewise_monotone(
        peak in 0.01f32..10.0,
        warmup in 1u64..50,
        extra in 1u64..200,
        power_sel in 0usize..2,
    ) {
        use multipod_optim::LrSchedule;
        let total = warmup + extra;
        let s = if power_sel == 0 {
            LrSchedule::lars_resnet(peak, warmup, total)
        } else {
            LrSchedule::lamb_bert(peak, warmup, total)
        };
        for step in 1..warmup {
            prop_assert!(s.at(step) >= s.at(step - 1) - 1e-7);
        }
        for step in warmup + 1..total {
            prop_assert!(s.at(step) <= s.at(step - 1) + 1e-7);
        }
        prop_assert!(s.at(warmup.saturating_sub(1)) <= peak * (1.0 + 1e-6));
    }
}
