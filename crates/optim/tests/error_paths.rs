//! Regression tests for the optimizer panic-path sweep: shape mismatches
//! between weights, gradients, and persisted state must surface as typed
//! [`OptimError`]s, never as panics.

use multipod_optim::{Lamb, Lars, LayerStats, OptimError, Optimizer, SgdMomentum, StateKey};
use multipod_tensor::{Shape, Tensor, TensorError};

fn optimizers() -> Vec<Box<dyn Optimizer>> {
    vec![
        Box::new(SgdMomentum::new(0.1, 0.9)),
        Box::new(Lars::new(0.1, 0.9, 1e-4)),
        Box::new(Lamb::new(0.01, 0.01)),
    ]
}

#[test]
fn mismatched_gradient_is_a_typed_error() {
    for mut opt in optimizers() {
        let mut w = Tensor::fill(Shape::vector(8), 1.0);
        let g = Tensor::fill(Shape::vector(4), 1.0);
        let err = opt
            .step(0, &mut w, &g)
            .expect_err("a 4-element gradient must not update 8-element weights");
        assert!(
            matches!(err, OptimError::Tensor(_)),
            "expected a tensor-level error, got {err:?}"
        );
    }
}

#[test]
fn mismatched_persisted_state_is_a_typed_error() {
    // Momentum/Adam state persisted for one shape rejects a differently
    // shaped gradient on the next step — the checkpoint-restored-for-a-
    // different-sharding scenario.
    for mut opt in optimizers() {
        let mut w = Tensor::fill(Shape::vector(8), 1.0);
        let g = Tensor::fill(Shape::vector(8), 0.5);
        opt.step(0, &mut w, &g).expect("well-shaped step");
        let w_small = Tensor::fill(Shape::vector(4), 1.0);
        let g_small = Tensor::fill(Shape::vector(4), 0.5);
        let result = opt.prepare(StateKey::full_layer(0), &w_small, &g_small);
        assert!(
            matches!(result, Err(OptimError::Tensor(_))),
            "{}: persisted 8-element state must reject a 4-element step, got {result:?}",
            opt.name()
        );
    }
}

#[test]
fn mismatched_update_in_apply_is_a_typed_error() {
    for opt in optimizers() {
        let mut w = Tensor::fill(Shape::vector(8), 1.0);
        let update = Tensor::fill(Shape::vector(2), 1.0);
        let err = opt
            .apply(&mut w, &update, LayerStats::default())
            .expect_err("a 2-element update must not apply to 8-element weights");
        match err {
            OptimError::Tensor(TensorError::ShapeMismatch { op, .. }) => {
                assert_eq!(op, "axpy");
            }
            other => panic!("expected an axpy shape mismatch, got {other:?}"),
        }
    }
}
