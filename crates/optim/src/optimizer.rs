//! The two-phase optimizer interface.

use multipod_tensor::Tensor;

use crate::OptimError;

/// Identifies the state slot an update touches: a layer plus the shard of
/// that layer being updated (`shard = 0, of = 1` for replicated updates).
///
/// Weight-update sharding gives every accelerator its own slice of each
/// layer; keying state by `(layer, shard)` keeps the sharded and
/// replicated paths from aliasing each other's momenta.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StateKey {
    /// Layer index.
    pub layer: usize,
    /// Shard index within the layer.
    pub shard: usize,
}

impl StateKey {
    /// The whole-layer key used by replicated updates.
    pub fn full_layer(layer: usize) -> StateKey {
        StateKey { layer, shard: 0 }
    }
}

/// Partial layerwise statistics produced by [`Optimizer::prepare`].
///
/// For a sharded update these are summed across all shards of the layer
/// (a scalar all-reduce) before [`Optimizer::apply`] runs, which is what
/// makes LARS/LAMB trust ratios — functions of *whole-layer* norms —
/// computable under weight-update sharding.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LayerStats {
    /// Σ w².
    pub weight_sq: f64,
    /// Σ u² of the raw update direction.
    pub update_sq: f64,
}

impl LayerStats {
    /// Componentwise sum, used when combining shard contributions.
    pub fn merge(self, other: LayerStats) -> LayerStats {
        LayerStats {
            weight_sq: self.weight_sq + other.weight_sq,
            update_sq: self.update_sq + other.update_sq,
        }
    }
}

/// One exported piece of optimizer state: the tensor stored under a
/// `(key, slot-name)` pair, e.g. SGD's `"velocity"` or LAMB's Adam
/// moments `"m"`/`"v"`.
///
/// [`Optimizer::export_state`] returns slots sorted by `(name, key)` so a
/// checkpoint of the same training state is always byte-identical;
/// [`Optimizer::import_state`] accepts them in any order.
#[derive(Clone, Debug, PartialEq)]
pub struct StateSlot {
    /// State key the tensor is stored under.
    pub key: StateKey,
    /// Slot name within the optimizer (e.g. `"velocity"`, `"m"`, `"v"`).
    pub name: String,
    /// The state tensor.
    pub tensor: Tensor,
}

/// A large-batch optimizer with a shardable two-phase step.
///
/// `prepare` consumes the gradient, advances any internal state
/// (momentum, Adam moments) for the given [`StateKey`], and returns the
/// raw update direction plus partial layer statistics. `apply` then
/// scales the direction by whatever function of the *global* statistics
/// the optimizer defines and subtracts it from the weights.
///
/// A plain (replicated) step is `prepare` followed immediately by `apply`
/// with the local stats; [`Optimizer::step`] does exactly that.
pub trait Optimizer {
    /// Human-readable optimizer name.
    fn name(&self) -> &'static str;

    /// Phase 1: advance state, produce the raw update direction and
    /// partial statistics for this shard.
    ///
    /// # Errors
    ///
    /// [`OptimError::Tensor`] when the gradient's shape disagrees with the
    /// weights or with state persisted under `key`.
    fn prepare(
        &mut self,
        key: StateKey,
        weights: &Tensor,
        grad: &Tensor,
    ) -> Result<(Tensor, LayerStats), OptimError>;

    /// Phase 2: apply the update direction under global layer statistics.
    ///
    /// # Errors
    ///
    /// [`OptimError::Tensor`] when the update's shape disagrees with the
    /// weights.
    fn apply(
        &self,
        weights: &mut Tensor,
        update: &Tensor,
        stats: LayerStats,
    ) -> Result<(), OptimError>;

    /// Approximate floating-point operations per parameter per step, for
    /// the weight-update compute-time model (§3.2's 18% anchor).
    fn flops_per_param(&self) -> u64;

    /// Overrides the base learning rate (driven per step by an
    /// [`crate::LrSchedule`]).
    fn set_learning_rate(&mut self, lr: f32);

    /// Convenience: a full replicated step on one layer.
    ///
    /// # Errors
    ///
    /// Propagates [`OptimError`] from [`Optimizer::prepare`] /
    /// [`Optimizer::apply`].
    fn step(
        &mut self,
        layer: usize,
        weights: &mut Tensor,
        grad: &Tensor,
    ) -> Result<(), OptimError> {
        let (update, stats) = self.prepare(StateKey::full_layer(layer), weights, grad)?;
        self.apply(weights, &update, stats)
    }

    /// Exports all internal state as named slots, sorted by
    /// `(name, key)` for deterministic serialization. Stateless
    /// optimizers return an empty list (the default).
    fn export_state(&self) -> Vec<StateSlot> {
        Vec::new()
    }

    /// Replaces the internal state with the given slots (the inverse of
    /// [`Optimizer::export_state`]); slots with names the optimizer does
    /// not own are ignored. The default is a no-op for stateless
    /// optimizers.
    fn import_state(&mut self, slots: &[StateSlot]) {
        let _ = slots;
    }
}

/// Sorts exported slots into the canonical `(name, key)` order.
///
/// Helper for `export_state` implementations that drain `HashMap`-backed
/// state (whose iteration order is unspecified).
pub fn sort_slots(mut slots: Vec<StateSlot>) -> Vec<StateSlot> {
    slots.sort_by(|a, b| (a.name.as_str(), a.key).cmp(&(b.name.as_str(), b.key)));
    slots
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_key_full_layer() {
        assert_eq!(StateKey::full_layer(3), StateKey { layer: 3, shard: 0 });
    }

    #[test]
    fn stats_merge_adds() {
        let a = LayerStats {
            weight_sq: 1.0,
            update_sq: 2.0,
        };
        let b = LayerStats {
            weight_sq: 3.0,
            update_sq: 4.0,
        };
        let m = a.merge(b);
        assert_eq!(m.weight_sq, 4.0);
        assert_eq!(m.update_sq, 6.0);
    }
}
