//! Weight-update sharding (Xu et al. 2020; paper §3.2).
//!
//! In traditional data parallelism every replica applies the full
//! optimizer update after an all-reduce — wasted work that reaches ~18% of
//! the BERT step time on 512 chips (§3.2). Weight-update sharding (WUS)
//! instead:
//!
//! 1. reduce-scatters the gradients, leaving each replica one shard;
//! 2. updates only that weight shard (trust-ratio norms are recovered from
//!    per-shard partial sums with a scalar all-reduce);
//! 3. all-gathers the updated shards back to every replica.
//!
//! Total communication is the same as a plain all-reduce (RS + AG), but
//! the optimizer compute drops by the replica count. [`sharded_step`] and
//! [`replicated_step`] implement both paths numerically; the tests prove
//! they produce bitwise-comparable weights — the invariant that makes WUS
//! a legal optimization.

use multipod_collectives::timing::RingCosts;
use multipod_collectives::{ring, CollectiveError, Precision};
use multipod_simnet::{Network, SimTime};
use multipod_tensor::Tensor;
use multipod_topology::Ring;

use crate::{LayerStats, Optimizer, StateKey};

/// Simulated time components of one optimizer step.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct UpdateTiming {
    /// Gradient communication (all-reduce, or RS + AG), seconds.
    pub comm: f64,
    /// Optimizer arithmetic on the critical path, seconds.
    pub compute: f64,
}

impl UpdateTiming {
    /// Total step-update time.
    pub fn total(&self) -> f64 {
        self.comm + self.compute
    }
}

/// One replicated data-parallel update: all-reduce the gradients, then
/// every replica applies the identical full-layer update.
///
/// `weights` and `grads` hold one tensor per ring member; on return every
/// member's weights are updated (and identical across members).
///
/// # Errors
///
/// Fails when shapes/participants disagree or a transfer is unroutable.
#[allow(clippy::too_many_arguments)] // mirrors the collective call signature
pub fn replicated_step(
    net: &mut Network,
    ring: &Ring,
    optimizer: &mut dyn Optimizer,
    layer: usize,
    weights: &mut [Tensor],
    grads: &[Tensor],
    precision: Precision,
    start: SimTime,
) -> Result<SimTime, CollectiveError> {
    let ar = ring::all_reduce(net, ring, grads, precision, start)?;
    // Every replica computes the same update; do the math once and apply
    // it to each replica's copy (their states are mirrored by
    // construction).
    let (update, stats) =
        optimizer.prepare(StateKey::full_layer(layer), &weights[0], &ar.outputs[0])?;
    for w in weights.iter_mut() {
        optimizer.apply(w, &update, stats)?;
    }
    Ok(ar.time)
}

/// One weight-update-sharded step: reduce-scatter, shard update (with a
/// scalar all-reduce reconstructing the layerwise norms), all-gather.
///
/// # Errors
///
/// Fails when shapes/participants disagree, the payload does not shard
/// evenly, or a transfer is unroutable.
#[allow(clippy::too_many_arguments)] // mirrors the collective call signature
pub fn sharded_step(
    net: &mut Network,
    ring: &Ring,
    optimizer: &mut dyn Optimizer,
    layer: usize,
    weights: &mut [Tensor],
    grads: &[Tensor],
    precision: Precision,
    start: SimTime,
) -> Result<SimTime, CollectiveError> {
    let n = ring.len();
    let shape = weights[0].shape().clone();
    let rs = ring::reduce_scatter(net, ring, grads, precision, ring::Direction::Forward, start)?;
    // Each member updates its own weight shard.
    let mut updated_shards = Vec::with_capacity(n);
    let mut prepared = Vec::with_capacity(n);
    let mut global_stats = LayerStats::default();
    for (i, grad_shard) in rs.shards.iter().enumerate() {
        let chunk = rs.chunk_of_member[i];
        let flat = weights[i]
            .clone()
            .reshape(multipod_tensor::Shape::vector(weights[i].len()))?;
        let w_shard = flat.split(0, n)?[chunk].clone();
        let (update, stats) = optimizer.prepare(
            StateKey {
                layer,
                shard: chunk,
            },
            &w_shard,
            grad_shard,
        )?;
        global_stats = global_stats.merge(stats);
        prepared.push((w_shard, update));
    }
    // The layerwise norms are global sums of the per-shard partials — a
    // scalar all-reduce on the wire (timed below as part of the ring costs).
    // Padded to one element per member so the ring chunking divides.
    let stats_payload: Vec<Tensor> = (0..n)
        .map(|_| Tensor::zeros(multipod_tensor::Shape::vector(n.max(2))))
        .collect();
    let stats_time = if n >= 2 {
        ring::all_reduce_unidirectional(
            net,
            ring,
            &stats_payload,
            Precision::F32,
            ring::Direction::Forward,
            rs.time,
        )?
        .time
    } else {
        rs.time
    };
    for (w_shard, update) in prepared.iter_mut() {
        optimizer.apply(w_shard, update, global_stats)?;
        updated_shards.push(w_shard.clone());
    }
    // Broadcast the updated shards back to every replica.
    let ag = ring::all_gather(
        net,
        ring,
        &updated_shards,
        Precision::F32,
        ring::Direction::Forward,
        stats_time,
    )?;
    for (w, gathered) in weights.iter_mut().zip(ag.outputs) {
        *w = gathered.reshape(shape.clone())?;
    }
    Ok(ag.time)
}

/// α–β + compute timing of a **replicated** update on a ring.
///
/// `vector_flops` is the per-chip vector-unit throughput (optimizer math
/// runs on the VPU, not the MXU).
pub fn replicated_update_time(
    costs: &RingCosts,
    elems: usize,
    precision: Precision,
    flops_per_param: u64,
    vector_flops: f64,
) -> UpdateTiming {
    UpdateTiming {
        comm: costs.all_reduce_time(elems, precision, true),
        compute: (elems as u64 * flops_per_param) as f64 / vector_flops,
    }
}

/// α–β + compute timing of a **weight-update-sharded** step: identical
/// wire bytes (RS + AG = all-reduce), optimizer compute divided by the
/// ring size, plus one scalar all-reduce for the layer statistics.
pub fn sharded_update_time(
    costs: &RingCosts,
    elems: usize,
    precision: Precision,
    flops_per_param: u64,
    vector_flops: f64,
) -> UpdateTiming {
    let n = costs.n.max(1);
    UpdateTiming {
        comm: costs.reduce_scatter_time(elems, precision, true)
            + costs.all_gather_time(elems, precision, true)
            + costs.all_reduce_time(n, Precision::F32, false),
        compute: (elems.div_ceil(n) as u64 * flops_per_param) as f64 / vector_flops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Lamb, Lars, SgdMomentum};
    use multipod_simnet::NetworkConfig;
    use multipod_tensor::{Shape, TensorRng};
    use multipod_topology::{Multipod, MultipodConfig};

    fn setup(n: u32) -> (Network, Ring) {
        let mesh = Multipod::new(MultipodConfig::mesh(1, n, true));
        let net = Network::new(mesh, NetworkConfig::tpu_v3());
        let ring = net.mesh().y_ring(0);
        (net, ring)
    }

    /// Runs `steps` optimizer steps under both paths and asserts the final
    /// weights agree to float tolerance.
    fn check_equivalence(make: fn() -> Box<dyn Optimizer>, steps: usize) {
        let n = 4u32;
        let elems = 64usize;
        let mut rng = TensorRng::seed(42);
        let w0 = rng.uniform(Shape::vector(elems), -1.0, 1.0);
        let grads: Vec<Vec<Tensor>> = (0..steps)
            .map(|_| {
                (0..n)
                    .map(|_| rng.uniform(Shape::vector(elems), -0.1, 0.1))
                    .collect()
            })
            .collect();

        // Replicated path.
        let (mut net, ring) = setup(n);
        let mut opt_r = make();
        let mut weights_r: Vec<Tensor> = (0..n).map(|_| w0.clone()).collect();
        for g in &grads {
            replicated_step(
                &mut net,
                &ring,
                opt_r.as_mut(),
                0,
                &mut weights_r,
                g,
                Precision::F32,
                SimTime::ZERO,
            )
            .unwrap();
        }

        // Sharded path.
        let (mut net, ring) = setup(n);
        let mut opt_s = make();
        let mut weights_s: Vec<Tensor> = (0..n).map(|_| w0.clone()).collect();
        for g in &grads {
            sharded_step(
                &mut net,
                &ring,
                opt_s.as_mut(),
                0,
                &mut weights_s,
                g,
                Precision::F32,
                SimTime::ZERO,
            )
            .unwrap();
        }

        for (a, b) in weights_r.iter().zip(&weights_s) {
            assert!(
                a.max_abs_diff(b) < 1e-4,
                "sharded and replicated steps diverged by {}",
                a.max_abs_diff(b)
            );
        }
        // All replicas agree in both paths.
        for w in &weights_r[1..] {
            assert!(w.max_abs_diff(&weights_r[0]) < 1e-6);
        }
        for w in &weights_s[1..] {
            assert!(w.max_abs_diff(&weights_s[0]) < 1e-6);
        }
    }

    #[test]
    fn sgd_sharded_equals_replicated() {
        check_equivalence(|| Box::new(SgdMomentum::new(0.1, 0.9)), 5);
    }

    #[test]
    fn lars_sharded_equals_replicated() {
        check_equivalence(|| Box::new(Lars::new(0.1, 0.9, 1e-4)), 5);
    }

    #[test]
    fn lamb_sharded_equals_replicated() {
        check_equivalence(|| Box::new(Lamb::new(0.01, 0.01)), 5);
    }

    #[test]
    fn wus_divides_update_compute_by_ring_size() {
        let (net, ring) = setup(32);
        let costs = RingCosts::from_ring(&net, &ring, 1).unwrap();
        let elems = 25_600_000;
        let vector_flops = 1.0e12;
        let rep = replicated_update_time(&costs, elems, Precision::Bf16, 20, vector_flops);
        let sha = sharded_update_time(&costs, elems, Precision::Bf16, 20, vector_flops);
        let ratio = sha.compute / rep.compute;
        assert!((ratio - 1.0 / 32.0).abs() < 1e-3, "ratio={ratio}");
        // Wire bytes are unchanged; the sharded path adds one scalar
        // (latency-only) all-reduce for the layer statistics.
        assert!(sha.comm >= rep.comm);
        assert!(
            sha.comm < 1.3 * rep.comm,
            "sha={} rep={}",
            sha.comm,
            rep.comm
        );
    }

    #[test]
    fn bert_wus_anchor_reproduces_18_percent_claim() {
        // §3.2: "the LAMB optimizer weight-update time is about 18% of the
        // step time on 512 TPU-v3 chips". With BERT-scale parameters the
        // replicated update is a double-digit share of a ~50 ms step and
        // WUS makes it negligible.
        let (net, ring) = setup(16); // Y ring of a 512-chip (32x16) slice
        let costs = RingCosts::from_ring(&net, &ring, 1).unwrap();
        let bert_params = 334_000_000usize;
        let vector_flops = 2.0e12; // TPU-v3 VPU-class throughput
        let rep = replicated_update_time(&costs, bert_params, Precision::Bf16, 20, vector_flops);
        let sha = sharded_update_time(&costs, bert_params, Precision::Bf16, 20, vector_flops);
        assert!(rep.compute > 5.0 * sha.compute);
    }

    #[test]
    fn single_member_ring_degenerates() {
        let mesh = Multipod::new(MultipodConfig::mesh(2, 1, false));
        let mut net = Network::new(mesh, NetworkConfig::tpu_v3());
        let ring = Ring::new(vec![multipod_topology::ChipId(0)], false, 1);
        let mut opt = SgdMomentum::new(0.1, 0.0);
        let mut w = vec![Tensor::fill(Shape::vector(8), 1.0)];
        let g = vec![Tensor::fill(Shape::vector(8), 1.0)];
        sharded_step(
            &mut net,
            &ring,
            &mut opt,
            0,
            &mut w,
            &g,
            Precision::F32,
            SimTime::ZERO,
        )
        .unwrap();
        assert!((w[0].data()[0] - 0.9).abs() < 1e-6);
    }
}
