//! The LAMB optimizer (You et al. 2019).

use std::collections::HashMap;

use multipod_tensor::{Shape, Tensor};

use crate::optimizer::sort_slots;
use crate::{LayerStats, OptimError, Optimizer, StateKey, StateSlot};

#[derive(Debug, Clone)]
struct Slot {
    m: Tensor,
    v: Tensor,
    t: u64,
}

/// Layer-wise Adaptive Moments for Batch training.
///
/// LAMB is what lets BERT "scale very well to large batch sizes" (§4.1):
/// Adam moments give per-parameter adaptivity, and a layerwise trust ratio
/// keeps the update norm proportional to the weight norm.
///
/// Update (per layer, step `t`):
/// ```text
/// m  = β₁ m + (1−β₁) g           v = β₂ v + (1−β₂) g²
/// m̂  = m / (1−β₁ᵗ)               v̂ = v / (1−β₂ᵗ)
/// u  = m̂ / (√v̂ + ε) + λ w
/// tr = ‖w‖ / (‖u‖ + ε)
/// w -= lr · tr · u
/// ```
///
/// As with LARS, the trust-ratio norms are whole-layer sums, which the
/// sharded update reconstructs from per-shard [`LayerStats`]. §3.2
/// measures this update at ~18% of the BERT step time on 512 chips when
/// executed replicated — the motivation for weight-update sharding.
#[derive(Debug, Clone)]
pub struct Lamb {
    lr: f32,
    beta1: f32,
    beta2: f32,
    epsilon: f32,
    weight_decay: f32,
    slots: HashMap<StateKey, Slot>,
}

impl Lamb {
    /// Creates a LAMB optimizer with the paper's default betas
    /// (0.9, 0.999).
    ///
    /// # Panics
    ///
    /// Panics on non-positive learning rate or betas outside (0, 1).
    pub fn new(lr: f32, weight_decay: f32) -> Lamb {
        Lamb::with_betas(lr, weight_decay, 0.9, 0.999)
    }

    /// Creates a LAMB optimizer with explicit betas.
    ///
    /// # Panics
    ///
    /// Panics on non-positive learning rate or betas outside (0, 1).
    pub fn with_betas(lr: f32, weight_decay: f32, beta1: f32, beta2: f32) -> Lamb {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&beta1) && (0.0..1.0).contains(&beta2));
        Lamb {
            lr,
            beta1,
            beta2,
            epsilon: 1e-6,
            weight_decay,
            slots: HashMap::new(),
        }
    }
}

impl Optimizer for Lamb {
    fn name(&self) -> &'static str {
        "lamb"
    }

    fn prepare(
        &mut self,
        key: StateKey,
        weights: &Tensor,
        grad: &Tensor,
    ) -> Result<(Tensor, LayerStats), OptimError> {
        let slot = self.slots.entry(key).or_insert_with(|| Slot {
            m: Tensor::zeros(weights.shape().clone()),
            v: Tensor::zeros(weights.shape().clone()),
            t: 0,
        });
        slot.t += 1;
        // m = β₁ m + (1−β₁) g ; v = β₂ v + (1−β₂) g².
        slot.m = slot.m.scale(self.beta1);
        slot.m.axpy(1.0 - self.beta1, grad)?;
        let g_sq = grad.mul(grad)?;
        slot.v = slot.v.scale(self.beta2);
        slot.v.axpy(1.0 - self.beta2, &g_sq)?;
        // Bias correction.
        let mc = 1.0 - self.beta1.powi(slot.t as i32);
        let vc = 1.0 - self.beta2.powi(slot.t as i32);
        let eps = self.epsilon;
        let u_data: Vec<f32> = slot
            .m
            .data()
            .iter()
            .zip(slot.v.data())
            .zip(weights.data())
            .map(|((&m, &v), &w)| {
                let mhat = m / mc;
                let vhat = v / vc;
                mhat / (vhat.sqrt() + eps) + self.weight_decay * w
            })
            .collect();
        let u = Tensor::new(weights.shape().clone(), u_data);
        let stats = LayerStats {
            weight_sq: weights
                .data()
                .iter()
                .map(|&w| (w as f64) * (w as f64))
                .sum(),
            update_sq: u.data().iter().map(|&x| (x as f64) * (x as f64)).sum(),
        };
        Ok((u, stats))
    }

    fn apply(
        &self,
        weights: &mut Tensor,
        update: &Tensor,
        stats: LayerStats,
    ) -> Result<(), OptimError> {
        let w_norm = stats.weight_sq.sqrt() as f32;
        let u_norm = stats.update_sq.sqrt() as f32;
        let trust = if w_norm > 0.0 && u_norm > 0.0 {
            w_norm / (u_norm + self.epsilon)
        } else {
            1.0
        };
        weights.axpy(-self.lr * trust, update)?;
        Ok(())
    }

    fn set_learning_rate(&mut self, lr: f32) {
        assert!(lr >= 0.0, "learning rate must be non-negative");
        self.lr = lr;
    }

    fn flops_per_param(&self) -> u64 {
        // m (3), v incl. g² (4), bias-corrected quotient (~5),
        // decay add (2), norms (4), apply (2).
        20
    }

    fn export_state(&self) -> Vec<StateSlot> {
        let mut slots = Vec::with_capacity(3 * self.slots.len());
        for (&key, slot) in &self.slots {
            slots.push(StateSlot {
                key,
                name: "m".to_string(),
                tensor: slot.m.clone(),
            });
            slots.push(StateSlot {
                key,
                name: "v".to_string(),
                tensor: slot.v.clone(),
            });
            // The bias-correction step counter rides along as a scalar
            // tensor; exact for any plausible simulated run (f32 holds
            // integers up to 2^24).
            slots.push(StateSlot {
                key,
                name: "t".to_string(),
                tensor: Tensor::scalar(slot.t as f32),
            });
        }
        sort_slots(slots)
    }

    fn import_state(&mut self, slots: &[StateSlot]) {
        self.slots.clear();
        for imported in slots {
            let entry = self.slots.entry(imported.key).or_insert_with(|| Slot {
                m: Tensor::zeros(Shape::vector(imported.tensor.len())),
                v: Tensor::zeros(Shape::vector(imported.tensor.len())),
                t: 0,
            });
            match imported.name.as_str() {
                "m" => entry.m = imported.tensor.clone(),
                "v" => entry.v = imported.tensor.clone(),
                "t" => entry.t = imported.tensor.data()[0] as u64,
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multipod_tensor::{Shape, TensorRng};

    #[test]
    fn first_step_direction_is_sign_of_gradient() {
        let mut opt = Lamb::new(0.01, 0.0);
        let mut w = Tensor::fill(Shape::of(&[4]), 1.0);
        let g = Tensor::from_slice(&[0.5, -0.5, 2.0, -2.0]);
        opt.step(0, &mut w, &g).unwrap();
        // With bias correction, the first Adam update is ~sign(g).
        assert!(w.data()[0] < 1.0 && w.data()[1] > 1.0);
        assert!(w.data()[2] < 1.0 && w.data()[3] > 1.0);
        // Magnitudes are equal regardless of gradient scale.
        assert!(((1.0 - w.data()[0]) - (w.data()[1] - 1.0)).abs() < 1e-5);
    }

    #[test]
    fn trust_ratio_bounds_step_by_weight_norm() {
        let mut opt = Lamb::new(0.1, 0.0);
        let mut w = Tensor::fill(Shape::of(&[16]), 1e-3);
        let g = Tensor::fill(Shape::of(&[16]), 10.0);
        let before = w.clone();
        opt.step(0, &mut w, &g).unwrap();
        let step_norm = w.sub(&before).unwrap().norm2();
        // ‖Δw‖ = lr · tr · ‖u‖ = lr · ‖w‖ (up to ε).
        assert!((step_norm - 0.1 * before.norm2()).abs() < 1e-5);
    }

    #[test]
    fn adam_state_evolves_deterministically() {
        let run = || {
            let mut opt = Lamb::new(0.01, 0.01);
            let mut rng = TensorRng::seed(5);
            let mut w = rng.uniform(Shape::of(&[32]), -1.0, 1.0);
            for _ in 0..10 {
                let g = rng.uniform(Shape::of(&[32]), -0.5, 0.5);
                opt.step(0, &mut w, &g).unwrap();
            }
            w
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn weight_decay_shrinks_weights_without_gradient() {
        let mut opt = Lamb::new(0.1, 0.1);
        let mut w = Tensor::fill(Shape::of(&[4]), 2.0);
        let g = Tensor::zeros(Shape::of(&[4]));
        let before = w.data()[0];
        opt.step(0, &mut w, &g).unwrap();
        assert!(w.data()[0] < before);
    }
}
