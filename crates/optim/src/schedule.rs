//! Learning-rate schedules.
//!
//! The MLPerf submissions pair their optimizers with warmup + decay
//! schedules: LARS ResNet-50 uses linear warmup into polynomial decay
//! (Goyal et al. 2017, §4.2's "momentum hyperparameters are tuned"),
//! and LAMB BERT warms up then decays polynomially (You et al. 2019).

use serde::{Deserialize, Serialize};

/// A learning-rate schedule evaluated per step.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum LrSchedule {
    /// A constant rate.
    Constant {
        /// The rate.
        lr: f32,
    },
    /// Linear warmup from 0 to `peak` over `warmup_steps`, then
    /// polynomial decay to `end_lr` at `total_steps`.
    WarmupPolyDecay {
        /// Peak learning rate reached at the end of warmup.
        peak: f32,
        /// Warmup steps.
        warmup_steps: u64,
        /// Total training steps.
        total_steps: u64,
        /// Decay exponent (2.0 for the LARS ResNet schedule, 1.0 for
        /// BERT's linear decay).
        power: f32,
        /// Final learning rate.
        end_lr: f32,
    },
}

impl LrSchedule {
    /// The standard large-batch ResNet-50 schedule shape: warmup over the
    /// first ~5 epochs, quadratic decay to zero.
    pub fn lars_resnet(peak: f32, warmup_steps: u64, total_steps: u64) -> LrSchedule {
        LrSchedule::WarmupPolyDecay {
            peak,
            warmup_steps,
            total_steps,
            power: 2.0,
            end_lr: 0.0,
        }
    }

    /// The LAMB BERT schedule shape: warmup then linear decay.
    pub fn lamb_bert(peak: f32, warmup_steps: u64, total_steps: u64) -> LrSchedule {
        LrSchedule::WarmupPolyDecay {
            peak,
            warmup_steps,
            total_steps,
            power: 1.0,
            end_lr: 0.0,
        }
    }

    /// The learning rate at (0-based) `step`.
    pub fn at(&self, step: u64) -> f32 {
        match *self {
            LrSchedule::Constant { lr } => lr,
            LrSchedule::WarmupPolyDecay {
                peak,
                warmup_steps,
                total_steps,
                power,
                end_lr,
            } => {
                if warmup_steps > 0 && step < warmup_steps {
                    return peak * (step + 1) as f32 / warmup_steps as f32;
                }
                if step >= total_steps {
                    return end_lr;
                }
                let span = (total_steps - warmup_steps).max(1) as f32;
                let progress = (step - warmup_steps) as f32 / span;
                end_lr + (peak - end_lr) * (1.0 - progress).powf(power)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warmup_rises_linearly_to_peak() {
        let s = LrSchedule::lars_resnet(10.0, 100, 1000);
        assert!((s.at(0) - 0.1).abs() < 1e-6);
        assert!((s.at(49) - 5.0).abs() < 1e-6);
        assert!((s.at(99) - 10.0).abs() < 1e-6);
    }

    #[test]
    fn decay_reaches_end_lr() {
        let s = LrSchedule::lamb_bert(1.0, 10, 100);
        assert!(s.at(10) <= 1.0);
        assert!(s.at(99) < 0.05);
        assert_eq!(s.at(100), 0.0);
        assert_eq!(s.at(10_000), 0.0);
    }

    #[test]
    fn quadratic_decays_faster_than_linear() {
        let quad = LrSchedule::lars_resnet(1.0, 0, 100);
        let lin = LrSchedule::lamb_bert(1.0, 0, 100);
        assert!(quad.at(50) < lin.at(50));
    }

    #[test]
    fn schedule_is_monotone_after_warmup() {
        let s = LrSchedule::lars_resnet(3.0, 20, 200);
        let mut prev = f32::MAX;
        for step in 20..200 {
            let lr = s.at(step);
            assert!(lr <= prev + 1e-9, "decay must be monotone at {step}");
            prev = lr;
        }
    }

    #[test]
    fn constant_is_constant() {
        let s = LrSchedule::Constant { lr: 0.25 };
        assert_eq!(s.at(0), 0.25);
        assert_eq!(s.at(1_000_000), 0.25);
    }
}
