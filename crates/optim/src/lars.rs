//! The LARS optimizer (You et al. 2017).

use std::collections::HashMap;

use multipod_tensor::Tensor;

use crate::optimizer::sort_slots;
use crate::{LayerStats, OptimError, Optimizer, StateKey, StateSlot};

/// Layer-wise Adaptive Rate Scaling.
///
/// LARS enables the 64k-batch ResNet-50 training of §4.2 by scaling each
/// layer's learning rate with the *trust ratio* `η‖w‖ / ‖g + λw‖`, so
/// layers with small gradients relative to their weights still make
/// progress.
///
/// Update (per layer):
/// ```text
/// d   = g + λ w                      (weight decay)
/// v   = μ v + d                      (momentum, elementwise)
/// tr  = η ‖w‖ / (‖d‖ + ε)            (layerwise trust ratio)
/// w  -= lr · tr · v
/// ```
///
/// The norms in `tr` are whole-layer quantities: under weight-update
/// sharding, each shard contributes Σw² and Σd² ([`LayerStats`]) that are
/// summed globally before `apply`.
#[derive(Debug, Clone)]
pub struct Lars {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    eta: f32,
    epsilon: f32,
    velocity: HashMap<StateKey, Tensor>,
}

impl Lars {
    /// Creates a LARS optimizer with the standard trust coefficient
    /// `eta = 0.001`.
    ///
    /// # Panics
    ///
    /// Panics on non-positive learning rate.
    pub fn new(lr: f32, momentum: f32, weight_decay: f32) -> Lars {
        Lars::with_eta(lr, momentum, weight_decay, 0.001)
    }

    /// Creates a LARS optimizer with an explicit trust coefficient.
    ///
    /// # Panics
    ///
    /// Panics on non-positive learning rate or eta.
    pub fn with_eta(lr: f32, momentum: f32, weight_decay: f32, eta: f32) -> Lars {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!(eta > 0.0, "trust coefficient must be positive");
        Lars {
            lr,
            momentum,
            weight_decay,
            eta,
            epsilon: 1e-9,
            velocity: HashMap::new(),
        }
    }
}

impl Optimizer for Lars {
    fn name(&self) -> &'static str {
        "lars"
    }

    fn prepare(
        &mut self,
        key: StateKey,
        weights: &Tensor,
        grad: &Tensor,
    ) -> Result<(Tensor, LayerStats), OptimError> {
        // d = g + λw
        let mut d = grad.clone();
        d.axpy(self.weight_decay, weights)?;
        let stats = LayerStats {
            weight_sq: weights
                .data()
                .iter()
                .map(|&w| (w as f64) * (w as f64))
                .sum(),
            update_sq: d.data().iter().map(|&u| (u as f64) * (u as f64)).sum(),
        };
        // v = μv + d
        let v = self
            .velocity
            .entry(key)
            .or_insert_with(|| Tensor::zeros(weights.shape().clone()));
        *v = v.scale(self.momentum);
        v.axpy(1.0, &d)?;
        Ok((v.clone(), stats))
    }

    fn apply(
        &self,
        weights: &mut Tensor,
        update: &Tensor,
        stats: LayerStats,
    ) -> Result<(), OptimError> {
        let w_norm = stats.weight_sq.sqrt() as f32;
        let d_norm = stats.update_sq.sqrt() as f32;
        let trust = if w_norm > 0.0 && d_norm > 0.0 {
            self.eta * w_norm / (d_norm + self.epsilon)
        } else {
            1.0
        };
        weights.axpy(-self.lr * trust, update)?;
        Ok(())
    }

    fn set_learning_rate(&mut self, lr: f32) {
        assert!(lr >= 0.0, "learning rate must be non-negative");
        self.lr = lr;
    }

    fn flops_per_param(&self) -> u64 {
        9 // decay axpy (2), two squared-norm accumulations (4), momentum (2), apply (1)
    }

    fn export_state(&self) -> Vec<StateSlot> {
        sort_slots(
            self.velocity
                .iter()
                .map(|(&key, tensor)| StateSlot {
                    key,
                    name: "velocity".to_string(),
                    tensor: tensor.clone(),
                })
                .collect(),
        )
    }

    fn import_state(&mut self, slots: &[StateSlot]) {
        self.velocity.clear();
        for slot in slots {
            if slot.name == "velocity" {
                self.velocity.insert(slot.key, slot.tensor.clone());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multipod_tensor::{Shape, TensorRng};

    #[test]
    fn trust_ratio_scales_update() {
        // Large weights + tiny gradients → effective step larger than
        // lr*eta*g (that is the point of LARS).
        let mut opt = Lars::with_eta(1.0, 0.0, 0.0, 0.001);
        let mut w = Tensor::fill(Shape::of(&[4]), 100.0);
        let g = Tensor::fill(Shape::of(&[4]), 1e-4);
        let before = w.data()[0];
        opt.step(0, &mut w, &g).unwrap();
        let step = before - w.data()[0];
        // trust = 0.001 * 200 / 2e-4 = 1000 → step = 1000 * 1e-4 = 0.1.
        assert!((step - 0.1).abs() < 1e-4, "step={step}");
    }

    #[test]
    fn zero_weights_fall_back_to_unit_trust() {
        let mut opt = Lars::new(0.5, 0.0, 0.0);
        let mut w = Tensor::zeros(Shape::of(&[2]));
        let g = Tensor::fill(Shape::of(&[2]), 1.0);
        opt.step(0, &mut w, &g).unwrap();
        assert!((w.data()[0] + 0.5).abs() < 1e-6);
    }

    #[test]
    fn weight_decay_enters_direction() {
        let mut with_wd = Lars::new(1.0, 0.0, 0.1);
        let mut without = Lars::new(1.0, 0.0, 0.0);
        let mut rng = TensorRng::seed(1);
        let w0 = rng.uniform(Shape::of(&[8]), 0.5, 1.0);
        let g = rng.uniform(Shape::of(&[8]), -0.1, 0.1);
        let mut wa = w0.clone();
        let mut wb = w0.clone();
        with_wd.step(0, &mut wa, &g).unwrap();
        without.step(0, &mut wb, &g).unwrap();
        assert!(wa.max_abs_diff(&wb) > 1e-6);
    }

    #[test]
    fn momentum_state_persists_per_key() {
        let mut opt = Lars::new(0.1, 0.9, 0.0);
        let mut w = Tensor::fill(Shape::of(&[2]), 1.0);
        let g = Tensor::fill(Shape::of(&[2]), 0.1);
        opt.step(0, &mut w, &g).unwrap();
        let after_one = w.data()[0];
        opt.step(0, &mut w, &g).unwrap();
        // Second step moves further due to momentum.
        assert!((1.0 - after_one) < (after_one - w.data()[0]) + 1e-9);
    }
}
