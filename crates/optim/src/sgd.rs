//! SGD with momentum.

use std::collections::HashMap;

use multipod_tensor::Tensor;

use crate::optimizer::sort_slots;
use crate::{LayerStats, OptimError, Optimizer, StateKey, StateSlot};

/// Plain SGD with heavyball momentum: `v ← μ v + g`, `w ← w − lr v`.
///
/// The baseline optimizer; its update is purely elementwise, so it shards
/// trivially (no layerwise statistics needed).
#[derive(Debug, Clone)]
pub struct SgdMomentum {
    lr: f32,
    momentum: f32,
    velocity: HashMap<StateKey, Tensor>,
}

impl SgdMomentum {
    /// Creates the optimizer.
    ///
    /// # Panics
    ///
    /// Panics for non-positive learning rates or momentum outside [0, 1).
    pub fn new(lr: f32, momentum: f32) -> SgdMomentum {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0,1)");
        SgdMomentum {
            lr,
            momentum,
            velocity: HashMap::new(),
        }
    }

    /// The learning rate.
    pub fn learning_rate(&self) -> f32 {
        self.lr
    }
}

impl Optimizer for SgdMomentum {
    fn name(&self) -> &'static str {
        "sgd-momentum"
    }

    fn prepare(
        &mut self,
        key: StateKey,
        weights: &Tensor,
        grad: &Tensor,
    ) -> Result<(Tensor, LayerStats), OptimError> {
        let v = self
            .velocity
            .entry(key)
            .or_insert_with(|| Tensor::zeros(weights.shape().clone()));
        *v = v.scale(self.momentum);
        v.axpy(1.0, grad)?;
        Ok((v.clone(), LayerStats::default()))
    }

    fn apply(
        &self,
        weights: &mut Tensor,
        update: &Tensor,
        _stats: LayerStats,
    ) -> Result<(), OptimError> {
        weights.axpy(-self.lr, update)?;
        Ok(())
    }

    fn set_learning_rate(&mut self, lr: f32) {
        assert!(lr >= 0.0, "learning rate must be non-negative");
        self.lr = lr;
    }

    fn flops_per_param(&self) -> u64 {
        4 // momentum decay, add, scale, subtract
    }

    fn export_state(&self) -> Vec<StateSlot> {
        sort_slots(
            self.velocity
                .iter()
                .map(|(&key, tensor)| StateSlot {
                    key,
                    name: "velocity".to_string(),
                    tensor: tensor.clone(),
                })
                .collect(),
        )
    }

    fn import_state(&mut self, slots: &[StateSlot]) {
        self.velocity.clear();
        for slot in slots {
            if slot.name == "velocity" {
                self.velocity.insert(slot.key, slot.tensor.clone());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multipod_tensor::Shape;

    #[test]
    fn first_step_is_plain_sgd() {
        let mut opt = SgdMomentum::new(0.5, 0.9);
        let mut w = Tensor::fill(Shape::of(&[3]), 1.0);
        let g = Tensor::fill(Shape::of(&[3]), 1.0);
        opt.step(0, &mut w, &g).unwrap();
        assert!(w.data().iter().all(|&v| (v - 0.5).abs() < 1e-6));
    }

    #[test]
    fn momentum_accumulates() {
        let mut opt = SgdMomentum::new(1.0, 0.5);
        let mut w = Tensor::fill(Shape::of(&[1]), 0.0);
        let g = Tensor::fill(Shape::of(&[1]), 1.0);
        opt.step(0, &mut w, &g).unwrap(); // v = 1, w = -1
        opt.step(0, &mut w, &g).unwrap(); // v = 1.5, w = -2.5
        assert!((w.data()[0] + 2.5).abs() < 1e-6);
    }

    #[test]
    fn layers_have_independent_state() {
        let mut opt = SgdMomentum::new(1.0, 0.9);
        let mut w0 = Tensor::fill(Shape::of(&[1]), 0.0);
        let mut w1 = Tensor::fill(Shape::of(&[1]), 0.0);
        let g = Tensor::fill(Shape::of(&[1]), 1.0);
        opt.step(0, &mut w0, &g).unwrap();
        opt.step(0, &mut w0, &g).unwrap();
        opt.step(1, &mut w1, &g).unwrap();
        // Layer 1's first step has no accumulated momentum.
        assert!((w1.data()[0] + 1.0).abs() < 1e-6);
        assert!(w0.data()[0] < -2.0);
    }

    #[test]
    #[should_panic(expected = "momentum")]
    fn validates_hyperparameters() {
        SgdMomentum::new(0.1, 1.5);
    }
}
