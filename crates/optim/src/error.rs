//! Typed optimizer errors.

use std::error::Error;
use std::fmt;

use multipod_collectives::CollectiveError;
use multipod_tensor::TensorError;

/// An optimizer update failed.
///
/// The update math is pure tensor arithmetic, so today every failure is a
/// tensor-level one — almost always a shape mismatch between the weights,
/// the gradient, and persisted momentum state (e.g. restoring a checkpoint
/// sharded for a different replica count). The enum leaves room for
/// optimizer-specific failures without breaking callers.
#[derive(Clone, Debug, PartialEq)]
pub enum OptimError {
    /// A tensor operation inside the update math failed.
    Tensor(TensorError),
}

impl fmt::Display for OptimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptimError::Tensor(e) => write!(f, "optimizer update failed: {e}"),
        }
    }
}

impl Error for OptimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            OptimError::Tensor(e) => Some(e),
        }
    }
}

impl From<TensorError> for OptimError {
    fn from(e: TensorError) -> OptimError {
        OptimError::Tensor(e)
    }
}

/// Collective drivers (weight-update sharding, the data-parallel trainer)
/// surface optimizer failures through their existing error type.
impl From<OptimError> for CollectiveError {
    fn from(e: OptimError) -> CollectiveError {
        match e {
            OptimError::Tensor(t) => CollectiveError::Tensor(t),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multipod_tensor::Shape;

    #[test]
    fn display_mentions_the_tensor_failure() {
        let e = OptimError::Tensor(TensorError::ShapeMismatch {
            op: "axpy",
            lhs: Shape::vector(4),
            rhs: Shape::vector(8),
        });
        let msg = e.to_string();
        assert!(msg.contains("optimizer update failed"), "{msg}");
        assert!(msg.contains("axpy"), "{msg}");
    }

    #[test]
    fn converts_into_collective_error() {
        let e = OptimError::Tensor(TensorError::EmptyInput { op: "sum_all" });
        match CollectiveError::from(e) {
            CollectiveError::Tensor(TensorError::EmptyInput { op }) => assert_eq!(op, "sum_all"),
            other => panic!("unexpected conversion: {other:?}"),
        }
    }
}
