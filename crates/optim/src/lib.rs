//! Optimizers and weight-update sharding.
//!
//! The paper trains with layerwise-adaptive large-batch optimizers — LARS
//! for ResNet-50 (You et al. 2017) and LAMB for BERT (You et al. 2019) —
//! and distributes the optimizer step itself with **weight-update
//! sharding** (Xu et al. 2020, §3.2): a reduce-scatter leaves each
//! accelerator with a shard of summed gradients, each accelerator updates
//! only its weight shard, and the updated shards are broadcast back.
//!
//! This crate implements the optimizer *math* for real (momentum/Adam
//! state, bias correction, trust ratios from layerwise norms) with a
//! two-phase API ([`Optimizer::prepare`] / [`Optimizer::apply`]) that makes
//! the sharded step expressible: per-shard partial norms are combined
//! globally (a scalar all-reduce) before the trust ratio is applied, so the
//! sharded update is **numerically identical** to the replicated one — the
//! property the paper's correctness implicitly relies on, and which this
//! crate's tests verify.
//!
//! ```
//! use multipod_optim::{Optimizer, SgdMomentum};
//! use multipod_tensor::{Shape, Tensor};
//!
//! let mut opt = SgdMomentum::new(0.1, 0.9);
//! let mut w = Tensor::fill(Shape::of(&[4]), 1.0);
//! let g = Tensor::fill(Shape::of(&[4]), 0.5);
//! opt.step(0, &mut w, &g);
//! assert!((w.data()[0] - 0.95).abs() < 1e-6);
//! ```

mod error;
mod lamb;
mod lars;
mod optimizer;
mod schedule;
mod sgd;
pub mod wus;

pub use error::OptimError;
pub use lamb::Lamb;
pub use lars::Lars;
pub use optimizer::{LayerStats, Optimizer, StateKey, StateSlot};
pub use schedule::LrSchedule;
pub use sgd::SgdMomentum;
