//! Property tests for the evaluation metrics.

use multipod_metrics::auc::{auc_bruteforce, auc_exact, auc_fast, auc_naive};
use multipod_metrics::bleu::{corpus_bleu, BleuStats};
use multipod_metrics::detection::{average_precision, coco_map, iou, Detection};
use proptest::prelude::*;

fn arb_scores_labels() -> impl Strategy<Value = (Vec<f32>, Vec<bool>)> {
    prop::collection::vec((0u32..100, any::<bool>()), 4..200).prop_map(|pairs| {
        let mut scores: Vec<f32> = pairs.iter().map(|&(s, _)| s as f32 / 100.0).collect();
        let mut labels: Vec<bool> = pairs.iter().map(|&(_, l)| l).collect();
        // Guarantee both classes.
        labels[0] = true;
        labels[1] = false;
        scores[0] = 0.55;
        scores[1] = 0.45;
        (scores, labels)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// All four AUC implementations agree on arbitrary (tie-heavy) inputs.
    #[test]
    fn auc_implementations_agree((scores, labels) in arb_scores_labels(), threads in 1usize..9) {
        let brute = auc_bruteforce(&scores, &labels);
        prop_assert!((auc_exact(&scores, &labels) - brute).abs() < 1e-9);
        prop_assert!((auc_naive(&scores, &labels) - brute).abs() < 1e-9);
        prop_assert!((auc_fast(&scores, &labels, threads) - brute).abs() < 1e-9);
        prop_assert!((0.0..=1.0).contains(&brute));
    }

    /// AUC is invariant under any strictly monotone transform of scores.
    #[test]
    fn auc_is_rank_based((scores, labels) in arb_scores_labels()) {
        let base = auc_exact(&scores, &labels);
        let transformed: Vec<f32> = scores.iter().map(|&s| s * 3.0 + 1.0).collect();
        prop_assert!((auc_exact(&transformed, &labels) - base).abs() < 1e-9);
    }

    /// BLEU statistics are additive: any split of the corpus across
    /// workers scores identically to the pooled corpus (§3.4).
    #[test]
    fn bleu_stats_are_additive(
        sentences in prop::collection::vec(
            (prop::collection::vec(0u32..20, 4..12), prop::collection::vec(0u32..20, 4..12)),
            2..10,
        ),
        split in 1usize..9,
    ) {
        let candidates: Vec<Vec<u32>> = sentences.iter().map(|(c, _)| c.clone()).collect();
        let references: Vec<Vec<u32>> = sentences.iter().map(|(_, r)| r.clone()).collect();
        let pooled = corpus_bleu(&candidates, &references);
        let cut = split.min(sentences.len() - 1);
        let mut w0 = BleuStats::default();
        for i in 0..cut {
            w0.accumulate(&candidates[i], &references[i]);
        }
        let mut w1 = BleuStats::default();
        for i in cut..sentences.len() {
            w1.accumulate(&candidates[i], &references[i]);
        }
        w0.merge(&w1);
        prop_assert!((w0.score() - pooled).abs() < 1e-12);
    }

    /// IoU is symmetric, bounded, and 1 only for identical boxes.
    #[test]
    fn iou_properties(
        ax in 0.0f32..10.0, ay in 0.0f32..10.0, aw in 0.1f32..5.0, ah in 0.1f32..5.0,
        bx in 0.0f32..10.0, by in 0.0f32..10.0, bw in 0.1f32..5.0, bh in 0.1f32..5.0,
    ) {
        let a = [ax, ay, ax + aw, ay + ah];
        let b = [bx, by, bx + bw, by + bh];
        let v = iou(a, b);
        prop_assert!((0.0..=1.0 + 1e-6).contains(&v));
        prop_assert!((v - iou(b, a)).abs() < 1e-6);
        prop_assert!((iou(a, a) - 1.0).abs() < 1e-6);
    }

    /// AP is monotone in the IoU threshold and mAP sits between AP@0.95
    /// and AP@0.5.
    #[test]
    fn ap_monotone_in_threshold(
        boxes in prop::collection::vec((0.0f32..8.0, 0.0f32..8.0, 0.5f32..3.0, 0.5f32..3.0, 0.0f32..0.9), 1..8),
    ) {
        let gts: Vec<Vec<[f32; 4]>> = vec![boxes
            .iter()
            .map(|&(x, y, w, h, _)| [x, y, x + w, y + h])
            .collect()];
        // Detections: the ground truth jittered by each box's jitter.
        let dets: Vec<Vec<Detection>> = vec![boxes
            .iter()
            .map(|&(x, y, w, h, j)| Detection {
                bbox: [x + j, y, x + w + j, y + h],
                score: 1.0 - j,
            })
            .collect()];
        let mut prev = f64::INFINITY;
        for t in [0.5f32, 0.65, 0.8, 0.95] {
            let ap = average_precision(&dets, &gts, t);
            prop_assert!(ap <= prev + 1e-9, "AP rose from {prev} to {ap} at {t}");
            prev = ap;
        }
        let map = coco_map(&dets, &gts);
        prop_assert!(map <= average_precision(&dets, &gts, 0.5) + 1e-9);
        prop_assert!(map >= average_precision(&dets, &gts, 0.95) - 1e-9);
    }
}
