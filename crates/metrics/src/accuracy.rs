//! Distributed top-1 accuracy (§3.4).

use multipod_collectives::timing::RingCosts;
use multipod_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// One worker's slice of the evaluation set: logits for its examples plus
/// which of them are real (MLPerf pads the eval set with dummy examples
/// when the eval batch exceeds the dataset, §3.4).
#[derive(Clone, Debug)]
pub struct EvalShard {
    /// `[examples × classes]` logits.
    pub logits: Tensor,
    /// True labels, one per example.
    pub labels: Vec<usize>,
    /// `false` for padding examples that must not count.
    pub real: Vec<bool>,
}

impl EvalShard {
    /// Builds a shard, padding bookkeeping included.
    ///
    /// # Panics
    ///
    /// Panics when lengths disagree.
    pub fn new(logits: Tensor, labels: Vec<usize>, real: Vec<bool>) -> EvalShard {
        let n = logits.shape().dim(0);
        assert_eq!(labels.len(), n, "labels per example");
        assert_eq!(real.len(), n, "real-mask per example");
        EvalShard {
            logits,
            labels,
            real,
        }
    }

    /// Local (correct, counted) sums — the quantities that are globally
    /// summed.
    pub fn local_counts(&self) -> (u64, u64) {
        let n = self.logits.shape().dim(0);
        let classes = self.logits.shape().dim(1);
        let mut correct = 0u64;
        let mut total = 0u64;
        for i in 0..n {
            if !self.real[i] {
                continue;
            }
            total += 1;
            let row = &self.logits.data()[i * classes..(i + 1) * classes];
            let argmax = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(idx, _)| idx)
                .expect("non-empty row");
            if argmax == self.labels[i] {
                correct += 1;
            }
        }
        (correct, total)
    }
}

/// Globally combined accuracy from per-worker shards, exactly as the JAX
/// implementation computes it (a global sum of local (correct, total)
/// pairs).
///
/// # Panics
///
/// Panics when no real examples exist.
pub fn distributed_accuracy(shards: &[EvalShard]) -> f64 {
    let (mut correct, mut total) = (0u64, 0u64);
    for s in shards {
        let (c, t) = s.local_counts();
        correct += c;
        total += t;
    }
    assert!(total > 0, "no real eval examples");
    correct as f64 / total as f64
}

/// How the combined metric reaches the training loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum MetricCombine {
    /// TF: every worker RPCs its local counts to the coordinator CPU.
    CoordinatorGather,
    /// JAX: an on-device all-reduce of the (correct, total) pair.
    DeviceAllReduce,
}

/// Time to combine local metrics across `workers`.
///
/// TF's coordinator deserializes one RPC per worker (Θ(workers) on one
/// host); JAX's all-reduce of two scalars costs only ring latency.
pub fn combine_time(
    mode: MetricCombine,
    workers: usize,
    rpc_latency: f64,
    ring: &RingCosts,
) -> f64 {
    match mode {
        MetricCombine::CoordinatorGather => rpc_latency * workers as f64,
        MetricCombine::DeviceAllReduce => {
            ring.all_reduce_time(2.max(ring.n), multipod_collectives::Precision::F32, false)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multipod_tensor::Shape;

    fn shard(rows: &[(Vec<f32>, usize, bool)]) -> EvalShard {
        let classes = rows[0].0.len();
        let mut data = Vec::new();
        let mut labels = Vec::new();
        let mut real = Vec::new();
        for (logits, label, is_real) in rows {
            data.extend_from_slice(logits);
            labels.push(*label);
            real.push(*is_real);
        }
        EvalShard::new(
            Tensor::new(Shape::of(&[rows.len(), classes]), data),
            labels,
            real,
        )
    }

    #[test]
    fn counts_correct_predictions() {
        let s = shard(&[
            (vec![0.9, 0.1], 0, true), // correct
            (vec![0.2, 0.8], 0, true), // wrong
            (vec![0.1, 0.9], 1, true), // correct
        ]);
        assert_eq!(s.local_counts(), (2, 3));
        assert!((distributed_accuracy(&[s]) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn padding_examples_do_not_count() {
        let s = shard(&[
            (vec![0.9, 0.1], 0, true),
            (vec![0.9, 0.1], 0, false), // dummy: would be correct, ignored
            (vec![0.1, 0.9], 0, false), // dummy: would be wrong, ignored
        ]);
        assert_eq!(s.local_counts(), (1, 1));
        assert_eq!(distributed_accuracy(&[s]), 1.0);
    }

    #[test]
    fn sharded_equals_pooled() {
        let a = shard(&[(vec![1.0, 0.0], 0, true), (vec![0.0, 1.0], 0, true)]);
        let b = shard(&[(vec![1.0, 0.0], 0, true), (vec![1.0, 0.0], 1, true)]);
        let pooled = shard(&[
            (vec![1.0, 0.0], 0, true),
            (vec![0.0, 1.0], 0, true),
            (vec![1.0, 0.0], 0, true),
            (vec![1.0, 0.0], 1, true),
        ]);
        assert!((distributed_accuracy(&[a, b]) - distributed_accuracy(&[pooled])).abs() < 1e-12);
    }

    #[test]
    fn device_all_reduce_beats_coordinator_at_scale() {
        use multipod_simnet::{Network, NetworkConfig};
        use multipod_topology::{Multipod, MultipodConfig};
        let net = Network::new(
            Multipod::new(MultipodConfig::mesh(1, 32, true)),
            NetworkConfig::tpu_v3(),
        );
        let ring = RingCosts::from_ring(&net, &net.mesh().y_ring(0), 1).unwrap();
        let tf = combine_time(MetricCombine::CoordinatorGather, 1024, 1.0e-3, &ring);
        let jax = combine_time(MetricCombine::DeviceAllReduce, 1024, 1.0e-3, &ring);
        assert!(tf > 100.0 * jax, "tf={tf} jax={jax}");
    }

    #[test]
    #[should_panic(expected = "no real eval examples")]
    fn all_padding_is_an_error() {
        let s = shard(&[(vec![1.0, 0.0], 0, false)]);
        distributed_accuracy(&[s]);
    }
}
