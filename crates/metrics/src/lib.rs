//! Evaluation metrics, distributed and fast.
//!
//! Three pieces of the paper's evaluation machinery live here:
//!
//! * [`accuracy`] — top-1 accuracy over logits, computed per shard and
//!   combined either JAX-style (an on-device all-reduce, §3.4) or
//!   TF-style (host RPC gather at the coordinator), including the
//!   dummy-example padding the MLPerf rules force when the eval batch
//!   exceeds the eval set.
//! * [`auc`] — AUC-ROC for DLRM's 90M-sample eval set (§4.6): an exact
//!   reference, a deliberately allocation-heavy "interpreter-style"
//!   baseline standing in for the 60 s/py implementation, and the paper's
//!   multithreaded-sort + fused-pass implementation (2 s-class).
//! * [`bleu`] — corpus BLEU for the Transformer's WMT target, with
//!   additive per-worker statistics (the distributed-eval property §3.4
//!   relies on).
//! * [`detection`] — COCO-style IoU matching and mAP for the SSD and
//!   MaskRCNN targets.
//! * [`placement`] — where eval runs: TF's coordinator process vs JAX's
//!   round-robin over workers (§4.4's COCO eval discussion).

pub mod accuracy;
pub mod auc;
pub mod bleu;
pub mod detection;
pub mod placement;
