//! Eval placement: coordinator vs round-robin workers (§4.4).
//!
//! "In TF SSD, the results of the predictions are all brought to the TF
//! coordinator process via host calls, and COCO eval is executed by the
//! TF coordinator process's CPUs. Since JAX does not have a separate
//! coordinator process, COCO eval is executed on the worker processes in
//! a round robin fashion to improve the load-imbalance."

use serde::{Deserialize, Serialize};

/// Where the host-side metric computation (e.g. COCO eval) runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum EvalPlacement {
    /// All evals run on the single coordinator host (TF).
    Coordinator,
    /// Eval `i` runs on worker `i % workers` (JAX).
    RoundRobin {
        /// Number of worker hosts.
        workers: usize,
    },
}

/// Timeline of periodic evals during a training run.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct EvalTimeline {
    /// Total wall-clock added to the run by waiting on evals, seconds.
    pub stall: f64,
    /// Per-host busy time of the most loaded host, seconds.
    pub max_host_busy: f64,
}

/// Simulates `evals` evaluations of `eval_cost` seconds each, issued
/// every `interval` seconds, under a placement policy. An eval must
/// finish before the *next* eval of the same host starts; training only
/// stalls when the assigned host is still busy at issue time.
///
/// # Panics
///
/// Panics when `interval` or `eval_cost` is negative, or `evals` is zero.
pub fn simulate_evals(
    placement: EvalPlacement,
    evals: usize,
    eval_cost: f64,
    interval: f64,
) -> EvalTimeline {
    assert!(evals > 0 && eval_cost >= 0.0 && interval >= 0.0);
    let workers = match placement {
        EvalPlacement::Coordinator => 1,
        EvalPlacement::RoundRobin { workers } => workers.max(1),
    };
    let mut host_free = vec![0.0f64; workers];
    let mut busy = vec![0.0f64; workers];
    let mut stall = 0.0f64;
    let mut clock = 0.0f64;
    for e in 0..evals {
        clock += interval;
        let host = e % workers;
        if host_free[host] > clock {
            // Training waits for the host to pick the new eval up.
            stall += host_free[host] - clock;
            clock = host_free[host];
        }
        host_free[host] = clock + eval_cost;
        busy[host] += eval_cost;
    }
    EvalTimeline {
        stall,
        max_host_busy: busy.iter().copied().fold(0.0, f64::max),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coordinator_serializes_slow_evals() {
        // Evals cost 30 s but arrive every 10 s: the coordinator falls
        // behind and training stalls.
        let tf = simulate_evals(EvalPlacement::Coordinator, 10, 30.0, 10.0);
        assert!(tf.stall > 100.0, "{tf:?}");
    }

    #[test]
    fn round_robin_absorbs_the_same_load() {
        let jax = simulate_evals(EvalPlacement::RoundRobin { workers: 8 }, 10, 30.0, 10.0);
        assert_eq!(jax.stall, 0.0, "{jax:?}");
        // Load spread across hosts.
        assert!(jax.max_host_busy <= 2.0 * 30.0 + 1e-9);
    }

    #[test]
    fn fast_evals_never_stall_either_way() {
        let tf = simulate_evals(EvalPlacement::Coordinator, 20, 1.0, 10.0);
        let jax = simulate_evals(EvalPlacement::RoundRobin { workers: 4 }, 20, 1.0, 10.0);
        assert_eq!(tf.stall, 0.0);
        assert_eq!(jax.stall, 0.0);
    }

    #[test]
    fn round_robin_with_one_worker_equals_coordinator() {
        let a = simulate_evals(EvalPlacement::Coordinator, 7, 12.0, 5.0);
        let b = simulate_evals(EvalPlacement::RoundRobin { workers: 1 }, 7, 12.0, 5.0);
        assert_eq!(a, b);
    }
}
