//! AUC (ROC) at DLRM scale (§4.6).
//!
//! "The evaluation metric is AUC (ROC) on a dataset composed of 90M
//! samples. Popular python libraries scale poorly to this size, requiring
//! 60 seconds per metric computation … We write a custom C++
//! CLIF-wrapped implementation that relies on multithreaded sorting and
//! loop fusion to compute the metric in 2 seconds per call."
//!
//! Three implementations of the same Mann-Whitney statistic:
//!
//! * [`auc_exact`] — the clean single-threaded reference (sort + one
//!   fused pass, with proper tie handling);
//! * [`auc_naive`] — an interpreter-style baseline: boxed per-element
//!   records, multiple materialized passes — the "popular python
//!   library" stand-in;
//! * [`auc_fast`] — the paper's recipe: chunked multithreaded sort
//!   (crossbeam scoped threads) + k-way merge + a single fused
//!   accumulation pass.

/// Exact AUC by sorting scores ascending and summing positive ranks
/// (Mann-Whitney U), with average ranks for ties.
///
/// # Panics
///
/// Panics when inputs are empty, lengths differ, or a class is missing.
pub fn auc_exact(scores: &[f32], labels: &[bool]) -> f64 {
    validate(scores, labels);
    let mut idx: Vec<u32> = (0..scores.len() as u32).collect();
    idx.sort_unstable_by(|&a, &b| scores[a as usize].total_cmp(&scores[b as usize]));
    auc_from_sorted(&idx, scores, labels)
}

/// AUC via an allocation-heavy multi-pass pipeline (the slow baseline).
///
/// Boxes every record, sorts through the indirection, and materializes
/// each intermediate (ranks, tie groups, positive ranks) as its own
/// vector — the access pattern of a dynamic-language implementation.
///
/// # Panics
///
/// Panics on invalid inputs (see [`auc_exact`]).
pub fn auc_naive(scores: &[f32], labels: &[bool]) -> f64 {
    validate(scores, labels);
    // Pass 1: build boxed records.
    #[allow(clippy::vec_box)]
    let mut records: Vec<Box<(f32, bool)>> = scores
        .iter()
        .zip(labels)
        .map(|(&s, &l)| Box::new((s, l)))
        .collect();
    // Pass 2: sort through the boxes.
    records.sort_by(|a, b| a.0.total_cmp(&b.0));
    // Pass 3: materialize ranks.
    let ranks: Vec<f64> = average_ranks(&records.iter().map(|r| r.0).collect::<Vec<_>>());
    // Pass 4: collect positive ranks.
    let positive_ranks: Vec<f64> = records
        .iter()
        .zip(&ranks)
        .filter(|(r, _)| r.1)
        .map(|(_, &rank)| rank)
        .collect();
    // Pass 5: the statistic.
    let pos = positive_ranks.len() as f64;
    let neg = records.len() as f64 - pos;
    let rank_sum: f64 = positive_ranks.iter().sum();
    (rank_sum - pos * (pos + 1.0) / 2.0) / (pos * neg)
}

/// AUC via multithreaded chunk sort + k-way merge + one fused pass.
///
/// `threads` scoped worker threads sort disjoint chunks; the merged order
/// is consumed in a single pass that accumulates tie groups and the rank
/// sum without materializing intermediates (the paper's "multithreaded
/// sorting and loop fusion").
///
/// # Panics
///
/// Panics on invalid inputs or `threads == 0`.
pub fn auc_fast(scores: &[f32], labels: &[bool], threads: usize) -> f64 {
    validate(scores, labels);
    assert!(threads > 0, "need at least one thread");
    let n = scores.len();
    let chunk = n.div_ceil(threads);
    // Sort chunk index slices in parallel.
    let mut chunks: Vec<Vec<u32>> = Vec::with_capacity(threads);
    crossbeam::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let lo = t * chunk;
                let hi = ((t + 1) * chunk).min(n);
                scope.spawn(move |_| {
                    let mut idx: Vec<u32> = (lo as u32..hi as u32).collect();
                    idx.sort_unstable_by(|&a, &b| {
                        scores[a as usize].total_cmp(&scores[b as usize])
                    });
                    idx
                })
            })
            .collect();
        for h in handles {
            let sorted = h.join().expect("sorter thread");
            if !sorted.is_empty() {
                chunks.push(sorted);
            }
        }
    })
    .expect("crossbeam scope");

    // Parallel pairwise merging: log2(threads) rounds, each merging
    // chunk pairs in scoped threads.
    while chunks.len() > 1 {
        let mut next: Vec<Vec<u32>> = Vec::with_capacity(chunks.len().div_ceil(2));
        let mut pairs = chunks.into_iter();
        let mut work: Vec<(Vec<u32>, Vec<u32>)> = Vec::new();
        while let Some(a) = pairs.next() {
            match pairs.next() {
                Some(b) => work.push((a, b)),
                None => next.push(a),
            }
        }
        crossbeam::scope(|scope| {
            let handles: Vec<_> = work
                .into_iter()
                .map(|(a, b)| scope.spawn(move |_| merge_sorted(&a, &b, scores)))
                .collect();
            for h in handles {
                next.push(h.join().expect("merge thread"));
            }
        })
        .expect("crossbeam scope");
        chunks = next;
    }
    let merged = chunks.pop().unwrap_or_default();
    auc_from_sorted(&merged, scores, labels)
}

/// Merges two score-sorted index runs.
fn merge_sorted(a: &[u32], b: &[u32], scores: &[f32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        if scores[a[i] as usize] <= scores[b[j] as usize] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Single fused pass over an ascending-score index order: accumulates
/// tie groups and the positive rank sum without intermediates.
fn auc_from_sorted(order: &[u32], scores: &[f32], labels: &[bool]) -> f64 {
    let mut pos = 0.0f64;
    let mut neg = 0.0f64;
    let mut rank_sum = 0.0f64;
    let mut i = 0usize;
    while i < order.len() {
        // Tie group [i, j).
        let mut j = i + 1;
        while j < order.len() && scores[order[j] as usize] == scores[order[i] as usize] {
            j += 1;
        }
        let avg_rank = (i + 1 + j) as f64 / 2.0; // mean of ranks i+1..=j
        for &k in &order[i..j] {
            if labels[k as usize] {
                pos += 1.0;
                rank_sum += avg_rank;
            } else {
                neg += 1.0;
            }
        }
        i = j;
    }
    (rank_sum - pos * (pos + 1.0) / 2.0) / (pos * neg)
}

fn average_ranks(sorted_scores: &[f32]) -> Vec<f64> {
    let n = sorted_scores.len();
    let mut ranks = vec![0.0f64; n];
    let mut i = 0usize;
    while i < n {
        let mut j = i + 1;
        while j < n && sorted_scores[j] == sorted_scores[i] {
            j += 1;
        }
        let avg = (i + 1 + j) as f64 / 2.0;
        for r in ranks.iter_mut().take(j).skip(i) {
            *r = avg;
        }
        i = j;
    }
    ranks
}

fn validate(scores: &[f32], labels: &[bool]) {
    assert!(!scores.is_empty(), "empty input");
    assert_eq!(scores.len(), labels.len(), "scores/labels length mismatch");
    assert!(labels.iter().any(|&l| l), "need at least one positive");
    assert!(labels.iter().any(|&l| !l), "need at least one negative");
}

/// Brute-force pairwise AUC for testing: P(score₊ > score₋) + ½P(=).
pub fn auc_bruteforce(scores: &[f32], labels: &[bool]) -> f64 {
    validate(scores, labels);
    let mut wins = 0.0f64;
    let mut pairs = 0.0f64;
    for (i, &li) in labels.iter().enumerate() {
        if !li {
            continue;
        }
        for (j, &lj) in labels.iter().enumerate() {
            if lj {
                continue;
            }
            pairs += 1.0;
            if scores[i] > scores[j] {
                wins += 1.0;
            } else if scores[i] == scores[j] {
                wins += 0.5;
            }
        }
    }
    wins / pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn synthetic(n: usize, seed: u64) -> (Vec<f32>, Vec<bool>) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut scores = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let label = rng.gen_range(0.0..1.0) < 0.25;
            // Positives score higher on average; quantized to force ties.
            let base: f32 = if label { 0.6 } else { 0.4 };
            let s = (base + rng.gen_range(-0.4..0.4f32) * 1.0).clamp(0.0, 1.0);
            scores.push((s * 100.0).round() / 100.0);
            labels.push(label);
        }
        // Ensure both classes exist.
        labels[0] = true;
        labels[1] = false;
        (scores, labels)
    }

    #[test]
    fn perfect_and_random_separability() {
        let scores = vec![0.1, 0.2, 0.8, 0.9];
        let labels = vec![false, false, true, true];
        assert_eq!(auc_exact(&scores, &labels), 1.0);
        let inverted = vec![true, true, false, false];
        assert_eq!(auc_exact(&scores, &inverted), 0.0);
    }

    #[test]
    fn ties_count_half() {
        let scores = vec![0.5, 0.5];
        let labels = vec![true, false];
        assert_eq!(auc_exact(&scores, &labels), 0.5);
    }

    #[test]
    fn all_implementations_agree_with_bruteforce() {
        for seed in 0..5 {
            let (scores, labels) = synthetic(500, seed);
            let brute = auc_bruteforce(&scores, &labels);
            assert!(
                (auc_exact(&scores, &labels) - brute).abs() < 1e-9,
                "seed {seed}"
            );
            assert!(
                (auc_naive(&scores, &labels) - brute).abs() < 1e-9,
                "seed {seed}"
            );
            for threads in [1, 2, 4, 7] {
                assert!(
                    (auc_fast(&scores, &labels, threads) - brute).abs() < 1e-9,
                    "seed {seed}, {threads} threads"
                );
            }
        }
    }

    #[test]
    fn fast_handles_more_threads_than_elements() {
        let scores = vec![0.1, 0.9, 0.5];
        let labels = vec![false, true, true];
        let expect = auc_exact(&scores, &labels);
        assert_eq!(auc_fast(&scores, &labels, 16), expect);
    }

    #[test]
    fn large_input_smoke() {
        let (scores, labels) = synthetic(200_000, 9);
        let fast = auc_fast(&scores, &labels, 8);
        let exact = auc_exact(&scores, &labels);
        assert!((fast - exact).abs() < 1e-9);
        assert!(fast > 0.6 && fast < 0.9, "separable synthetic data: {fast}");
    }

    #[test]
    #[should_panic(expected = "at least one positive")]
    fn rejects_single_class() {
        auc_exact(&[0.1, 0.2], &[false, false]);
    }
}
