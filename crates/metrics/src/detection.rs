//! Detection evaluation (COCO-style mAP) for SSD and MaskRCNN.
//!
//! The paper's SSD/MaskRCNN targets are COCO mAP values, and §4.4
//! discusses *where* the (CPU-side) COCO eval runs under TF vs JAX. This
//! module implements the metric itself — greedy IoU matching and
//! area-under-the-precision-envelope AP, averaged over the COCO IoU
//! thresholds — so the evaluation path is real, not stubbed.

use serde::{Deserialize, Serialize};

/// An axis-aligned box `[x1, y1, x2, y2]`.
pub type Box2d = [f32; 4];

/// A scored detection for one image.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Detection {
    /// The predicted box.
    pub bbox: Box2d,
    /// Confidence score.
    pub score: f32,
}

/// Intersection-over-union of two boxes.
///
/// Degenerate (empty) boxes have zero IoU with everything.
pub fn iou(a: Box2d, b: Box2d) -> f32 {
    let ix = (a[2].min(b[2]) - a[0].max(b[0])).max(0.0);
    let iy = (a[3].min(b[3]) - a[1].max(b[1])).max(0.0);
    let inter = ix * iy;
    let area = |r: Box2d| ((r[2] - r[0]).max(0.0)) * ((r[3] - r[1]).max(0.0));
    let union = area(a) + area(b) - inter;
    if union <= 0.0 {
        0.0
    } else {
        inter / union
    }
}

/// Average precision at one IoU threshold over a set of images.
///
/// `detections[i]` and `ground_truth[i]` belong to image `i`. Matching is
/// greedy in score order (each ground-truth box matches at most once),
/// and AP integrates the monotone precision envelope over recall — the
/// standard COCO procedure (without its 101-point interpolation, which
/// changes values by <1%).
///
/// # Panics
///
/// Panics when the two lists have different lengths.
pub fn average_precision(
    detections: &[Vec<Detection>],
    ground_truth: &[Vec<Box2d>],
    iou_threshold: f32,
) -> f64 {
    assert_eq!(
        detections.len(),
        ground_truth.len(),
        "one detection list per image"
    );
    let total_gt: usize = ground_truth.iter().map(Vec::len).sum();
    if total_gt == 0 {
        return 0.0;
    }
    // Flatten detections with image ids, sort by descending score.
    let mut all: Vec<(usize, Detection)> = detections
        .iter()
        .enumerate()
        .flat_map(|(img, dets)| dets.iter().map(move |&d| (img, d)))
        .collect();
    all.sort_by(|a, b| b.1.score.total_cmp(&a.1.score));

    let mut matched: Vec<Vec<bool>> = ground_truth.iter().map(|g| vec![false; g.len()]).collect();
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut curve: Vec<(f64, f64)> = Vec::with_capacity(all.len()); // (recall, precision)
    for (img, det) in all {
        // Best unmatched ground-truth box above the threshold.
        let mut best: Option<(usize, f32)> = None;
        for (gi, &gt) in ground_truth[img].iter().enumerate() {
            if matched[img][gi] {
                continue;
            }
            let overlap = iou(det.bbox, gt);
            if overlap >= iou_threshold && best.is_none_or(|(_, b)| overlap > b) {
                best = Some((gi, overlap));
            }
        }
        match best {
            Some((gi, _)) => {
                matched[img][gi] = true;
                tp += 1;
            }
            None => fp += 1,
        }
        curve.push((tp as f64 / total_gt as f64, tp as f64 / (tp + fp) as f64));
    }
    // Monotone precision envelope, integrated over recall.
    let mut ap = 0.0f64;
    let mut prev_recall = 0.0f64;
    let mut i = 0usize;
    while i < curve.len() {
        let max_prec = curve[i..].iter().map(|&(_, p)| p).fold(0.0f64, f64::max);
        // Extend to the furthest point achieving this precision.
        let mut j = i;
        let mut recall_here = curve[i].0;
        while j < curve.len() {
            if curve[j].1 >= max_prec - 1e-12 {
                recall_here = curve[j].0;
                i = j + 1;
            }
            j += 1;
        }
        ap += max_prec * (recall_here - prev_recall);
        prev_recall = recall_here;
    }
    ap
}

/// COCO's primary metric: AP averaged over IoU thresholds 0.5 to 0.95 in
/// steps of 0.05.
pub fn coco_map(detections: &[Vec<Detection>], ground_truth: &[Vec<Box2d>]) -> f64 {
    let thresholds: Vec<f32> = (0..10).map(|i| 0.5 + 0.05 * i as f32).collect();
    thresholds
        .iter()
        .map(|&t| average_precision(detections, ground_truth, t))
        .sum::<f64>()
        / thresholds.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(x1: f32, y1: f32, x2: f32, y2: f32) -> Box2d {
        [x1, y1, x2, y2]
    }

    #[test]
    fn iou_basics() {
        assert_eq!(iou(b(0., 0., 2., 2.), b(0., 0., 2., 2.)), 1.0);
        assert_eq!(iou(b(0., 0., 1., 1.), b(2., 2., 3., 3.)), 0.0);
        // Half-overlapping unit squares: inter 0.5, union 1.5.
        let v = iou(b(0., 0., 1., 1.), b(0.5, 0., 1.5, 1.));
        assert!((v - 1.0 / 3.0).abs() < 1e-6);
        assert_eq!(iou(b(0., 0., 0., 0.), b(0., 0., 1., 1.)), 0.0);
    }

    #[test]
    fn perfect_detections_score_one() {
        let gts = vec![vec![b(0., 0., 1., 1.), b(2., 2., 3., 3.)]];
        let dets = vec![vec![
            Detection {
                bbox: b(0., 0., 1., 1.),
                score: 0.9,
            },
            Detection {
                bbox: b(2., 2., 3., 3.),
                score: 0.8,
            },
        ]];
        assert!((average_precision(&dets, &gts, 0.5) - 1.0).abs() < 1e-9);
        assert!((coco_map(&dets, &gts) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn false_positives_lower_precision() {
        let gts = vec![vec![b(0., 0., 1., 1.)]];
        let clean = vec![vec![Detection {
            bbox: b(0., 0., 1., 1.),
            score: 0.9,
        }]];
        let noisy = vec![vec![
            Detection {
                bbox: b(5., 5., 6., 6.), // scores above the true positive
                score: 0.95,
            },
            Detection {
                bbox: b(0., 0., 1., 1.),
                score: 0.9,
            },
        ]];
        let ap_clean = average_precision(&clean, &gts, 0.5);
        let ap_noisy = average_precision(&noisy, &gts, 0.5);
        assert!(ap_noisy < ap_clean);
        assert!(ap_noisy > 0.0);
    }

    #[test]
    fn missed_boxes_cap_recall() {
        let gts = vec![vec![b(0., 0., 1., 1.), b(2., 2., 3., 3.)]];
        let dets = vec![vec![Detection {
            bbox: b(0., 0., 1., 1.),
            score: 0.9,
        }]];
        let ap = average_precision(&dets, &gts, 0.5);
        assert!((ap - 0.5).abs() < 1e-9, "ap={ap}");
    }

    #[test]
    fn tighter_thresholds_never_raise_ap() {
        // A slightly offset detection passes IoU 0.5 but fails 0.9.
        let gts = vec![vec![b(0., 0., 10., 10.)]];
        let dets = vec![vec![Detection {
            bbox: b(1., 1., 11., 11.),
            score: 0.9,
        }]];
        let loose = average_precision(&dets, &gts, 0.5);
        let tight = average_precision(&dets, &gts, 0.9);
        assert_eq!(loose, 1.0);
        assert_eq!(tight, 0.0);
        let map = coco_map(&dets, &gts);
        assert!(map > 0.0 && map < 1.0);
    }

    #[test]
    fn each_ground_truth_matches_once() {
        // Two detections on the same box: the second is a false positive.
        let gts = vec![vec![b(0., 0., 1., 1.)]];
        let dets = vec![vec![
            Detection {
                bbox: b(0., 0., 1., 1.),
                score: 0.9,
            },
            Detection {
                bbox: b(0.01, 0.0, 1.01, 1.0),
                score: 0.8,
            },
        ]];
        let ap = average_precision(&dets, &gts, 0.5);
        assert!((ap - 1.0).abs() < 1e-9, "envelope keeps AP at 1: {ap}");
        // But precision at full recall reflects the duplicate.
        let gts2 = vec![vec![b(0., 0., 1., 1.)], vec![b(0., 0., 1., 1.)]];
        let dets2 = vec![
            vec![Detection {
                bbox: b(0., 0., 1., 1.),
                score: 0.7, // true positive, ranked last
            }],
            vec![Detection {
                bbox: b(9., 9., 10., 10.),
                score: 0.9, // confident false positive
            }],
        ];
        let ap2 = average_precision(&dets2, &gts2, 0.5);
        assert!(ap2 < 0.6, "ap2={ap2}");
    }

    #[test]
    fn empty_ground_truth_is_zero() {
        let ap = average_precision(&[vec![]], &[vec![]], 0.5);
        assert_eq!(ap, 0.0);
    }
}
