//! BLEU, the Transformer benchmark's quality metric.
//!
//! MLPerf's Transformer trains WMT English→German to a BLEU target (25.0
//! in v0.7). The metric itself — modified n-gram precision with a brevity
//! penalty (Papineni et al. 2002) — is implemented here so the evaluation
//! path of the translation benchmark is real. Corpus-level BLEU composes
//! from per-sentence n-gram statistics, which is what lets the JAX
//! implementation combine per-worker counts with a global summation
//! (§3.4) instead of gathering the raw translations.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

/// Accumulated corpus statistics: clipped n-gram matches and totals for
/// n = 1..=4, plus candidate/reference lengths.
///
/// Statistics from different workers **add**, so a distributed evaluation
/// can all-reduce these ten integers instead of the translations.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BleuStats {
    /// Clipped matches per n-gram order (index = n-1).
    pub matches: [u64; 4],
    /// Candidate n-gram totals per order.
    pub totals: [u64; 4],
    /// Candidate length.
    pub candidate_len: u64,
    /// Reference length.
    pub reference_len: u64,
}

impl BleuStats {
    /// Accumulates one (candidate, reference) sentence pair.
    pub fn accumulate(&mut self, candidate: &[u32], reference: &[u32]) {
        self.candidate_len += candidate.len() as u64;
        self.reference_len += reference.len() as u64;
        for n in 1..=4usize {
            if candidate.len() < n {
                continue;
            }
            let cand = ngram_counts(candidate, n);
            let refc = ngram_counts(reference, n);
            let mut matched = 0u64;
            for (gram, &count) in &cand {
                let cap = refc.get(gram).copied().unwrap_or(0);
                matched += count.min(cap);
            }
            self.matches[n - 1] += matched;
            self.totals[n - 1] += (candidate.len() + 1 - n) as u64;
        }
    }

    /// Merges another worker's statistics (a scalar all-reduce on the
    /// wire).
    pub fn merge(&mut self, other: &BleuStats) {
        for n in 0..4 {
            self.matches[n] += other.matches[n];
            self.totals[n] += other.totals[n];
        }
        self.candidate_len += other.candidate_len;
        self.reference_len += other.reference_len;
    }

    /// The corpus BLEU score in [0, 100].
    pub fn score(&self) -> f64 {
        if self.candidate_len == 0 || self.totals.contains(&0) {
            return 0.0;
        }
        if self.matches.contains(&0) {
            return 0.0;
        }
        let log_precision: f64 = (0..4)
            .map(|n| (self.matches[n] as f64 / self.totals[n] as f64).ln())
            .sum::<f64>()
            / 4.0;
        let brevity = if self.candidate_len >= self.reference_len {
            1.0
        } else {
            (1.0 - self.reference_len as f64 / self.candidate_len as f64).exp()
        };
        100.0 * brevity * log_precision.exp()
    }
}

/// Corpus BLEU of candidate/reference token sequences.
///
/// # Panics
///
/// Panics when the corpora have different lengths.
pub fn corpus_bleu(candidates: &[Vec<u32>], references: &[Vec<u32>]) -> f64 {
    assert_eq!(candidates.len(), references.len(), "paired corpora");
    let mut stats = BleuStats::default();
    for (c, r) in candidates.iter().zip(references) {
        stats.accumulate(c, r);
    }
    stats.score()
}

fn ngram_counts(tokens: &[u32], n: usize) -> HashMap<&[u32], u64> {
    let mut counts = HashMap::new();
    for w in tokens.windows(n) {
        *counts.entry(w).or_insert(0) += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_corpora_score_100() {
        let c = vec![vec![1, 2, 3, 4, 5], vec![6, 7, 8, 9]];
        assert!((corpus_bleu(&c, &c) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn disjoint_corpora_score_zero() {
        let c = vec![vec![1, 2, 3, 4, 5]];
        let r = vec![vec![6, 7, 8, 9, 10]];
        assert_eq!(corpus_bleu(&c, &r), 0.0);
    }

    #[test]
    fn partial_overlap_scores_in_between() {
        let r = vec![vec![1, 2, 3, 4, 5, 6, 7, 8]];
        let good = vec![vec![1, 2, 3, 4, 5, 6, 9, 8]];
        let bad = vec![vec![1, 9, 3, 9, 5, 9, 7, 9]];
        let s_good = corpus_bleu(&good, &r);
        let s_bad = corpus_bleu(&bad, &r);
        assert!(s_good > 40.0, "s_good={s_good}");
        assert!(s_bad < s_good);
    }

    #[test]
    fn brevity_penalty_punishes_short_candidates() {
        let r = vec![vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10]];
        let full = vec![vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10]];
        let short = vec![vec![1, 2, 3, 4, 5]];
        assert!(corpus_bleu(&short, &r) < corpus_bleu(&full, &r));
    }

    #[test]
    fn clipping_prevents_repetition_gaming() {
        // "the the the the" must not get credit for every repeat.
        let r = vec![vec![1, 2, 3, 4, 5]];
        let spam = vec![vec![1, 1, 1, 1, 1]];
        assert_eq!(corpus_bleu(&spam, &r), 0.0); // no 2-gram matches at all
        let spam1 = BleuStats::default();
        let mut s = spam1;
        s.accumulate(&[1, 1, 1, 1, 1], &[1, 2, 3, 4, 5]);
        assert_eq!(s.matches[0], 1, "unigram matches are clipped to 1");
    }

    #[test]
    fn distributed_stats_equal_pooled_stats() {
        // The §3.4 property: per-worker stats merged = whole-corpus stats.
        let candidates = vec![
            vec![1, 2, 3, 4, 9],
            vec![5, 6, 7, 8, 9, 10],
            vec![2, 4, 6, 8],
            vec![1, 3, 5, 7, 9],
        ];
        let references = vec![
            vec![1, 2, 3, 4, 5],
            vec![5, 6, 7, 8, 9, 11],
            vec![2, 4, 6, 8],
            vec![1, 3, 5, 7, 8],
        ];
        let pooled = corpus_bleu(&candidates, &references);
        // Two workers, two sentences each.
        let mut w0 = BleuStats::default();
        w0.accumulate(&candidates[0], &references[0]);
        w0.accumulate(&candidates[1], &references[1]);
        let mut w1 = BleuStats::default();
        w1.accumulate(&candidates[2], &references[2]);
        w1.accumulate(&candidates[3], &references[3]);
        let mut merged = w0;
        merged.merge(&w1);
        assert!((merged.score() - pooled).abs() < 1e-12);
    }

    #[test]
    fn empty_or_short_inputs_are_safe() {
        assert_eq!(corpus_bleu(&[vec![]], &[vec![1, 2, 3]]), 0.0);
        assert_eq!(corpus_bleu(&[vec![1, 2]], &[vec![1, 2]]), 0.0); // no 4-grams
    }
}
