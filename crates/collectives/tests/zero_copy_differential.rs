//! Differential tests for the zero-copy collective hot path.
//!
//! The golden checksums below were captured from the pre-zero-copy seed
//! (`Vec<f32>`-backed tensors, cloned routes, copy-per-hop ring loops)
//! on the exact scenarios encoded here. The copy-on-write refactor must
//! be bit-invisible: same output bits, same simulated-time bits, and a
//! byte-identical Chrome trace export. A failing hash means the refactor
//! changed numerics or event ordering, not just performance.
//!
//! The property tests additionally pin the aliasing contract: collectives
//! may share input storage internally, but caller-held input tensors must
//! be bit-unchanged after every call.

use std::sync::Arc;

use multipod_collectives::{ring, twod, Precision};
use multipod_simnet::{Network, NetworkConfig, SimTime};
use multipod_tensor::{Shape, Tensor, TensorRng};
use multipod_topology::{Multipod, MultipodConfig};
use multipod_trace::{Recorder, TraceSink};
use proptest::prelude::*;

fn fnv1a<I: IntoIterator<Item = u8>>(bytes: I) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn hash_tensors(tensors: &[Tensor]) -> u64 {
    fnv1a(
        tensors
            .iter()
            .flat_map(|t| t.data().iter().flat_map(|v| v.to_bits().to_le_bytes())),
    )
}

fn random_inputs(n: usize, elems: usize, seed: u64) -> Vec<Tensor> {
    let mut rng = TensorRng::seed(seed);
    (0..n)
        .map(|_| rng.uniform(Shape::vector(elems), -1.0, 1.0))
        .collect()
}

fn torus(x: u32, y: u32) -> Network {
    Network::new(
        Multipod::new(MultipodConfig::mesh(x, y, true)),
        NetworkConfig::tpu_v3(),
    )
}

/// Deep snapshots for before/after aliasing comparisons.
fn snapshot(tensors: &[Tensor]) -> Vec<Vec<f32>> {
    tensors.iter().map(|t| t.data().to_vec()).collect()
}

fn assert_unmutated(inputs: &[Tensor], before: &[Vec<f32>]) {
    for (i, (t, b)) in inputs.iter().zip(before).enumerate() {
        let same = t
            .data()
            .iter()
            .zip(b)
            .all(|(x, y)| x.to_bits() == y.to_bits());
        assert!(same, "input {i} was mutated by the collective");
    }
}

#[test]
fn ring_all_reduce_matches_seed_golden() {
    let mut net = torus(1, 8);
    let ring_y = net.mesh().y_ring(0);
    let ins = random_inputs(8, 1024, 42);
    let before = snapshot(&ins);
    let out = ring::all_reduce(&mut net, &ring_y, &ins, Precision::F32, SimTime::ZERO).unwrap();
    assert_eq!(hash_tensors(&out.outputs), 0x3cb9_56de_cb64_6325);
    assert_eq!(out.time.seconds().to_bits(), 0x3f09_b78a_660d_09b4);
    assert_unmutated(&ins, &before);
}

#[test]
fn twod_all_reduce_f32_matches_seed_golden() {
    let mut net = torus(4, 4);
    let ins = random_inputs(16, 256, 7);
    let before = snapshot(&ins);
    let out = twod::two_dim_all_reduce(&mut net, &ins, Precision::F32, 1, None).unwrap();
    assert_eq!(hash_tensors(&out.outputs), 0x71d3_3e5e_74c5_c545);
    assert_eq!(out.time.seconds().to_bits(), 0x3f09_2e21_e154_eca8);
    assert_unmutated(&ins, &before);
}

#[test]
fn twod_all_reduce_bf16_matches_seed_golden() {
    let mut net = torus(4, 4);
    let ins = random_inputs(16, 256, 7);
    let out = twod::two_dim_all_reduce(&mut net, &ins, Precision::Bf16, 1, None).unwrap();
    assert_eq!(hash_tensors(&out.outputs), 0x5a60_304b_71c9_fe0f);
    assert_eq!(out.time.seconds().to_bits(), 0x3f09_2c4a_a932_e87e);
}

#[test]
fn chrome_trace_export_matches_seed_bytes() {
    let mut net = torus(4, 4);
    let recorder = Recorder::shared();
    net.set_trace_sink(recorder.clone() as Arc<dyn TraceSink>);
    let ins = random_inputs(16, 256, 7);
    twod::two_dim_all_reduce(&mut net, &ins, Precision::F32, 1, None).unwrap();
    let text = serde_json::to_string(&recorder.chrome_trace().unwrap()).unwrap();
    assert_eq!(text.len(), 53198, "trace length drifted from the seed");
    assert_eq!(fnv1a(text.bytes()), 0xed54_ab1f_9ac2_5e39);
}

#[test]
fn twod_all_reduce_model_stride_matches_seed_golden() {
    let mut net = torus(8, 4);
    let ins = random_inputs(32, 128, 9);
    let before = snapshot(&ins);
    let out = twod::two_dim_all_reduce(&mut net, &ins, Precision::F32, 2, None).unwrap();
    assert_eq!(hash_tensors(&out.outputs), 0xc0d1_4590_16fb_c3c5);
    assert_eq!(out.time.seconds().to_bits(), 0x3f19_2b8e_2c58_8066);
    assert_unmutated(&ins, &before);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For any ring size and either precision, the zero-copy all-reduce
    /// still equals the scalar reference sum and never mutates its
    /// caller-held inputs (the copy-on-write aliasing contract).
    #[test]
    fn all_reduce_is_sum_and_leaves_inputs_untouched(
        y in 2u32..10,
        chunk in 1usize..6,
        seed in 0u64..10_000,
        bf16 in any::<bool>(),
    ) {
        let mut net = torus(1, y);
        let ring_y = net.mesh().y_ring(0);
        // 2·n·chunk elements so the bidirectional split always divides.
        let elems = 2 * chunk * y as usize;
        let ins = random_inputs(y as usize, elems, seed);
        let before = snapshot(&ins);
        let precision = if bf16 { Precision::Bf16 } else { Precision::F32 };
        let reference = Tensor::sum_all(
            &ins.iter().map(|t| precision.quantize(t)).collect::<Vec<_>>(),
        ).unwrap();
        let out = ring::all_reduce(&mut net, &ring_y, &ins, precision, SimTime::ZERO).unwrap();
        let tol = if bf16 { 0.25 } else { 1e-3 };
        for o in &out.outputs {
            prop_assert!(o.max_abs_diff(&reference) < tol);
        }
        assert_unmutated(&ins, &before);
    }

    /// The 2-D summation never mutates caller inputs either, and all
    /// outputs within a replica group are bit-identical to each other.
    #[test]
    fn twod_leaves_inputs_untouched(
        x in 2u32..5,
        y in 2u32..5,
        chunk in 1usize..4,
        seed in 0u64..10_000,
    ) {
        let mut net = torus(x, y);
        let n = net.mesh().num_chips();
        let elems = 2 * chunk * (x * y) as usize;
        let ins = random_inputs(n, elems, seed);
        let before = snapshot(&ins);
        let out = twod::two_dim_all_reduce(
            &mut net, &ins, Precision::F32, 1, None,
        ).unwrap();
        assert_unmutated(&ins, &before);
        for o in &out.outputs {
            prop_assert!(o == &out.outputs[0], "replica outputs must agree bitwise");
        }
    }
}
