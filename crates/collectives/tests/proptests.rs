//! Property tests: collective numerics vs scalar references on arbitrary
//! mesh shapes and payloads.

use multipod_collectives::{ring, twod, Precision};
use multipod_simnet::{Network, NetworkConfig, SimTime};
use multipod_tensor::{Shape, Tensor, TensorRng};
use multipod_topology::{Multipod, MultipodConfig};
use proptest::prelude::*;

fn random_inputs(n: usize, elems: usize, seed: u64) -> Vec<Tensor> {
    let mut rng = TensorRng::seed(seed);
    (0..n)
        .map(|_| rng.uniform(Shape::vector(elems), -8.0, 8.0))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Ring all-reduce equals the scalar sum for any ring length and any
    /// payload divisible into chunks, in both directions.
    #[test]
    fn ring_all_reduce_is_sum(
        y in 2u32..9,
        chunk in 1usize..7,
        seed in 0u64..10_000,
        forward in any::<bool>(),
    ) {
        let mesh = Multipod::new(MultipodConfig::mesh(1, y, true));
        let mut net = Network::new(mesh, NetworkConfig::tpu_v3());
        let ring_y = net.mesh().y_ring(0);
        let ins = random_inputs(y as usize, chunk * y as usize, seed);
        let reference = Tensor::sum_all(&ins).unwrap();
        let dir = if forward { ring::Direction::Forward } else { ring::Direction::Backward };
        let out = ring::all_reduce_unidirectional(
            &mut net, &ring_y, &ins, Precision::F32, dir, SimTime::ZERO,
        ).unwrap();
        for o in &out.outputs {
            prop_assert!(o.max_abs_diff(&reference) < 1e-3);
        }
    }

    /// Bidirectional all-reduce agrees with the unidirectional one
    /// numerically (and with the scalar sum).
    #[test]
    fn bidirectional_matches_unidirectional(
        y in 2u32..8,
        chunk in 1usize..5,
        seed in 0u64..10_000,
    ) {
        let elems = 2 * chunk * y as usize;
        let mesh = Multipod::new(MultipodConfig::mesh(1, y, true));
        let mut net = Network::new(mesh, NetworkConfig::tpu_v3());
        let ring_y = net.mesh().y_ring(0);
        let ins = random_inputs(y as usize, elems, seed);
        let reference = Tensor::sum_all(&ins).unwrap();
        let out = ring::all_reduce(&mut net, &ring_y, &ins, Precision::F32, SimTime::ZERO)
            .unwrap();
        for o in &out.outputs {
            prop_assert!(o.max_abs_diff(&reference) < 1e-3);
        }
    }

    /// Reduce-scatter followed by all-gather reproduces the all-reduce
    /// output exactly (same schedule family).
    #[test]
    fn rs_then_ag_equals_ar(
        y in 2u32..8,
        chunk in 1usize..5,
        seed in 0u64..10_000,
    ) {
        let mesh = Multipod::new(MultipodConfig::mesh(1, y, true));
        let mut net = Network::new(mesh, NetworkConfig::tpu_v3());
        let ring_y = net.mesh().y_ring(0);
        let ins = random_inputs(y as usize, chunk * y as usize, seed);
        let rs = ring::reduce_scatter(
            &mut net, &ring_y, &ins, Precision::F32, ring::Direction::Forward, SimTime::ZERO,
        ).unwrap();
        let ag = ring::all_gather(
            &mut net, &ring_y, &rs.shards, Precision::F32, ring::Direction::Forward, rs.time,
        ).unwrap();
        let reference = Tensor::sum_all(&ins).unwrap();
        for o in &ag.outputs {
            prop_assert!(o.max_abs_diff(&reference) < 1e-3);
        }
        prop_assert!(ag.time >= rs.time);
    }

    /// The 2-D schedule sums over exactly the replica groups defined by
    /// `x % stride`, for arbitrary mesh shapes and strides.
    #[test]
    fn two_dim_all_reduce_sums_replica_groups(
        xs in 1u32..4,       // x_len = stride * xs
        stride in 1u32..4,
        y in 2u32..6,
        chunk in 1usize..3,
        seed in 0u64..10_000,
    ) {
        let x_len = stride * xs;
        let mesh = Multipod::new(MultipodConfig::mesh(x_len, y, true));
        let mut net = Network::new(mesh.clone(), NetworkConfig::tpu_v3());
        // Payload must split across Y then X rings.
        let elems = chunk * (y as usize) * (xs as usize);
        let ins = random_inputs(mesh.num_chips(), elems, seed);
        let out = twod::two_dim_all_reduce(&mut net, &ins, Precision::F32, stride, None)
            .unwrap();
        for offset in 0..stride {
            let group: Vec<Tensor> = mesh
                .chips()
                .filter(|&c| mesh.coord_of(c).x % stride == offset)
                .map(|c| ins[c.index()].clone())
                .collect();
            let reference = Tensor::sum_all(&group).unwrap();
            for chip in mesh.chips().filter(|&c| mesh.coord_of(c).x % stride == offset) {
                prop_assert!(
                    out.outputs[chip.index()].max_abs_diff(&reference) < 1e-3,
                    "chip {chip} offset {offset}"
                );
            }
        }
    }

    /// bf16 all-reduce stays within the precision bound implied by the
    /// format: relative error per element bounded by ~n * epsilon.
    #[test]
    fn bf16_all_reduce_error_bounded(
        y in 2u32..7,
        seed in 0u64..10_000,
    ) {
        let n = y as usize;
        let mesh = Multipod::new(MultipodConfig::mesh(1, y, true));
        let mut net = Network::new(mesh, NetworkConfig::tpu_v3());
        let ring_y = net.mesh().y_ring(0);
        let mut rng = TensorRng::seed(seed);
        let ins: Vec<Tensor> = (0..n)
            .map(|_| rng.uniform(Shape::vector(4 * n), 0.5, 1.5))
            .collect();
        let reference = Tensor::sum_all(&ins).unwrap();
        let out = ring::all_reduce_unidirectional(
            &mut net, &ring_y, &ins, Precision::Bf16, ring::Direction::Forward, SimTime::ZERO,
        ).unwrap();
        let bound = reference.data().iter().fold(0.0f32, |m, &v| m.max(v.abs()))
            * (n as f32) * (1.0 / 128.0);
        for o in &out.outputs {
            prop_assert!(o.max_abs_diff(&reference) <= bound);
        }
    }

    /// Timing monotonicity: more bytes never complete faster, at either
    /// precision, on any ring.
    #[test]
    fn timing_is_monotone_in_payload(
        y in 2u32..9,
        small in 1usize..50,
        extra in 1usize..50,
    ) {
        use multipod_collectives::timing::RingCosts;
        let mesh = Multipod::new(MultipodConfig::mesh(1, y, true));
        let net = Network::new(mesh, NetworkConfig::tpu_v3());
        let costs = RingCosts::from_ring(&net, &net.mesh().y_ring(0), 1).unwrap();
        let n = y as usize;
        let a = costs.all_reduce_time(small * n * 1000, Precision::F32, true);
        let b = costs.all_reduce_time((small + extra) * n * 1000, Precision::F32, true);
        prop_assert!(b >= a);
        let c = costs.all_reduce_time(small * n * 1000, Precision::Bf16, true);
        prop_assert!(c <= a);
    }
}
