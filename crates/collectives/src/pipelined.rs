//! Pipelined (non-barrier) ring execution.
//!
//! The numeric executor in [`crate::ring`] synchronizes every schedule
//! step with a barrier — simple and verifiable, but pessimistic: real ICI
//! collectives are *pipelined*, a member forwards a chunk the moment it
//! arrives. This module times the same [`Schedule`]s event-style through
//! the dependency recurrence
//!
//! ```text
//! done[i][s] = max(done[send(i)][s−1], done[i][s−1], link_free) + α + chunk/β
//! ```
//!
//! where `done[i][s]` is when member `i` finishes *receiving* its step-`s`
//! chunk. The event-driven run exposes two facts the tests pin down:
//! uniform rings are data-dependency lockstep (pipelining equals the
//! barrier schedule), and a logical ring laid on an *open line* pays its
//! long wrap edge at every step — the quantitative reason §3.3 routes the
//! bulk payload over the torus Y rings rather than the X lines.

use multipod_simnet::{Network, SimTime};
use multipod_topology::Ring;
use multipod_trace::{SpanCategory, SpanEvent};

use crate::ring::Direction;
use crate::{chip_track, emit_span, CollectiveError, Precision, Schedule};

/// Emits a pipelined-collective span on the ring's first member.
fn emit_pipelined_span(
    net: &Network,
    ring: &Ring,
    category: SpanCategory,
    name: &str,
    start: SimTime,
    end: SimTime,
    bytes: u64,
) {
    if ring.len() < 2 || net.trace_sink().is_none() {
        return;
    }
    emit_span(
        net,
        SpanEvent::new(
            chip_track(net, ring.members()[0]),
            category,
            name,
            start,
            end,
        )
        .with_bytes(bytes)
        .with_arg("members", ring.len() as f64),
    );
}

/// Times a pipelined reduce-scatter of `elems` elements on `ring`.
///
/// # Errors
///
/// Fails when a hop is unroutable.
pub fn reduce_scatter_time(
    net: &mut Network,
    ring: &Ring,
    elems: usize,
    precision: Precision,
    direction: Direction,
    start: SimTime,
) -> Result<SimTime, CollectiveError> {
    let schedule = Schedule::reduce_scatter(ring.len(), direction);
    let t = run_pipelined(net, ring, &schedule, elems, precision, start)?;
    emit_pipelined_span(
        net,
        ring,
        SpanCategory::CollectivePhase,
        "pipelined-reduce-scatter",
        start,
        t,
        precision.wire_bytes(elems),
    );
    Ok(t)
}

/// Times a pipelined all-gather of `elems` total elements on `ring`.
///
/// # Errors
///
/// Fails when a hop is unroutable.
pub fn all_gather_time(
    net: &mut Network,
    ring: &Ring,
    elems: usize,
    precision: Precision,
    direction: Direction,
    start: SimTime,
) -> Result<SimTime, CollectiveError> {
    let schedule = Schedule::all_gather(ring.len(), direction);
    let t = run_pipelined(net, ring, &schedule, elems, precision, start)?;
    emit_pipelined_span(
        net,
        ring,
        SpanCategory::CollectivePhase,
        "pipelined-all-gather",
        start,
        t,
        precision.wire_bytes(elems),
    );
    Ok(t)
}

/// Times a pipelined all-reduce (reduce-scatter then all-gather).
///
/// # Errors
///
/// Fails when a hop is unroutable.
pub fn all_reduce_time(
    net: &mut Network,
    ring: &Ring,
    elems: usize,
    precision: Precision,
    direction: Direction,
    start: SimTime,
) -> Result<SimTime, CollectiveError> {
    // Chain per member, not through a global barrier: each member starts
    // gathering as soon as its own shard is reduced.
    let n = ring.len();
    let rs = Schedule::reduce_scatter(n, direction);
    let per_member = run_pipelined_from(net, ring, &rs, elems, precision, &vec![start; n])?;
    let ag = Schedule::all_gather(n, direction);
    let done = run_pipelined_from(net, ring, &ag, elems, precision, &per_member)?;
    let t = done.into_iter().fold(start, SimTime::max);
    emit_pipelined_span(
        net,
        ring,
        SpanCategory::Collective,
        "pipelined-all-reduce",
        start,
        t,
        precision.wire_bytes(elems),
    );
    Ok(t)
}

fn run_pipelined(
    net: &mut Network,
    ring: &Ring,
    schedule: &Schedule,
    elems: usize,
    precision: Precision,
    start: SimTime,
) -> Result<SimTime, CollectiveError> {
    let starts = vec![start; ring.len().max(1)];
    let done = run_pipelined_from(net, ring, schedule, elems, precision, &starts)?;
    Ok(done.into_iter().fold(start, SimTime::max))
}

/// Event-driven schedule execution with per-member start times; returns
/// per-member completion times so chained collectives can pipeline across
/// phase boundaries.
fn run_pipelined_from(
    net: &mut Network,
    ring: &Ring,
    schedule: &Schedule,
    elems: usize,
    precision: Precision,
    starts: &[SimTime],
) -> Result<Vec<SimTime>, CollectiveError> {
    let n = ring.len();
    if n < 2 {
        return Ok(starts.to_vec());
    }
    if !elems.is_multiple_of(n) {
        return Err(CollectiveError::IndivisiblePayload { elems, parts: n });
    }
    let chunk_bytes = precision.wire_bytes(elems / n);
    let members = ring.members();
    // done[i] = when member i finished receiving its chunk for the
    // current step (before step 0: the member's own start time).
    let mut done = starts.to_vec();
    for step in schedule.steps() {
        let prev = done.clone();
        for mv in step {
            // A member may send its step-s chunk once it has finished its
            // own step-(s−1) receive; the receiver must also be done with
            // its previous step (single in-flight receive per member).
            let ready = prev[mv.from].max(prev[mv.to]);
            let t = net.transfer(members[mv.from], members[mv.to], chunk_bytes, ready)?;
            done[mv.to] = t.finish;
        }
    }
    Ok(done)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring;
    use multipod_simnet::NetworkConfig;
    use multipod_tensor::{Shape, Tensor, TensorRng};
    use multipod_topology::{Multipod, MultipodConfig};

    fn line(x: u32) -> Network {
        Network::new(
            Multipod::new(MultipodConfig::mesh(x, 1, false)),
            NetworkConfig::tpu_v3(),
        )
    }

    fn torus_col(y: u32) -> Network {
        Network::new(
            Multipod::new(MultipodConfig::mesh(1, y, true)),
            NetworkConfig::tpu_v3(),
        )
    }

    #[test]
    fn pipelined_never_slower_than_barrier_stepped() {
        for y in [4u32, 8, 16] {
            let elems = (y as usize) * 1024;
            let mut barrier_net = torus_col(y);
            let ring_y = barrier_net.mesh().y_ring(0);
            let mut rng = TensorRng::seed(y as u64);
            let ins: Vec<Tensor> = (0..y as usize)
                .map(|_| rng.uniform(Shape::vector(elems), -1.0, 1.0))
                .collect();
            let barrier = ring::all_reduce_unidirectional(
                &mut barrier_net,
                &ring_y,
                &ins,
                Precision::F32,
                ring::Direction::Forward,
                SimTime::ZERO,
            )
            .unwrap()
            .time;
            let mut pipe_net = torus_col(y);
            let ring_y = pipe_net.mesh().y_ring(0);
            let pipelined = all_reduce_time(
                &mut pipe_net,
                &ring_y,
                elems,
                Precision::F32,
                Direction::Forward,
                SimTime::ZERO,
            )
            .unwrap();
            assert!(
                pipelined <= barrier,
                "y={y}: pipelined={pipelined} barrier={barrier}"
            );
        }
    }

    #[test]
    fn ring_steps_are_data_dependency_lockstep() {
        // A perhaps-surprising property the event-driven run makes
        // visible: for a uniform ring, pipelining buys nothing — each
        // member's next receive depends on its neighbour's previous one,
        // so the dependency chain *is* the barrier schedule. (Pipelining
        // matters across chained collectives and staggered producers, not
        // within one uniform ring.)
        let y = 8u32;
        let elems = (y as usize) * 1024;
        let mut barrier_net = torus_col(y);
        let ring_y = barrier_net.mesh().y_ring(0);
        let mut rng = TensorRng::seed(3);
        let ins: Vec<Tensor> = (0..y as usize)
            .map(|_| rng.uniform(Shape::vector(elems), -1.0, 1.0))
            .collect();
        let barrier = ring::all_reduce_unidirectional(
            &mut barrier_net,
            &ring_y,
            &ins,
            Precision::F32,
            ring::Direction::Forward,
            SimTime::ZERO,
        )
        .unwrap()
        .time;
        let mut pipe_net = torus_col(y);
        let ring_y = pipe_net.mesh().y_ring(0);
        let pipelined = all_reduce_time(
            &mut pipe_net,
            &ring_y,
            elems,
            Precision::F32,
            Direction::Forward,
            SimTime::ZERO,
        )
        .unwrap();
        let ratio = pipelined.seconds() / barrier.seconds();
        assert!((0.9..=1.0).contains(&ratio), "ratio={ratio}");
    }

    #[test]
    fn open_line_pays_the_wrap_every_step() {
        // The member downstream of the logical wrap edge receives across
        // the whole line at *every* step, so a logical ring on an open
        // line is much slower than the same-size torus ring — the
        // quantitative reason the paper routes the bulk of the payload
        // over the torus Y dimension (§3.3).
        let n = 16u32;
        let elems = (n as usize) * 64; // latency-dominated chunks
        let mut line_net = line(n);
        let chain = line_net.mesh().x_line(0);
        let on_line = all_reduce_time(
            &mut line_net,
            &chain,
            elems,
            Precision::F32,
            Direction::Forward,
            SimTime::ZERO,
        )
        .unwrap();
        let mut torus_net = torus_col(n);
        let ring_y = torus_net.mesh().y_ring(0);
        let on_torus = all_reduce_time(
            &mut torus_net,
            &ring_y,
            elems,
            Precision::F32,
            Direction::Forward,
            SimTime::ZERO,
        )
        .unwrap();
        assert!(
            on_line.seconds() > 1.5 * on_torus.seconds(),
            "line={on_line} torus={on_torus}"
        );
    }

    #[test]
    fn bandwidth_bound_regime_matches_alpha_beta() {
        // With big chunks both the pipelined run and the α–β closed form
        // are bandwidth-dominated and must agree closely.
        use crate::timing::RingCosts;
        let y = 8u32;
        let elems = (y as usize) * (1 << 16);
        let mut pipe_net = torus_col(y);
        let ring_y = pipe_net.mesh().y_ring(0);
        let pipelined = all_reduce_time(
            &mut pipe_net,
            &ring_y,
            elems,
            Precision::F32,
            Direction::Forward,
            SimTime::ZERO,
        )
        .unwrap()
        .seconds();
        let fresh = torus_col(y);
        let costs = RingCosts::from_ring(&fresh, &fresh.mesh().y_ring(0), 1).unwrap();
        let analytic = costs.all_reduce_time(elems, Precision::F32, false);
        let ratio = pipelined / analytic;
        assert!((0.8..1.3).contains(&ratio), "ratio={ratio}");
    }

    #[test]
    fn single_member_is_free_and_odd_payloads_rejected() {
        let mut net = line(2);
        let solo = multipod_topology::Ring::new(vec![multipod_topology::ChipId(0)], false, 1);
        let t = all_reduce_time(
            &mut net,
            &solo,
            1000,
            Precision::F32,
            Direction::Forward,
            SimTime::ZERO,
        )
        .unwrap();
        assert_eq!(t, SimTime::ZERO);
        let pair = net.mesh().x_line(0);
        assert!(reduce_scatter_time(
            &mut net,
            &pair,
            7,
            Precision::F32,
            Direction::Forward,
            SimTime::ZERO
        )
        .is_err());
    }
}
