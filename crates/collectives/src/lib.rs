//! Collective communication on the multipod.
//!
//! Implements the paper's gradient-summation machinery (§3.3, Figure 4):
//!
//! * **Ring collectives** ([`ring`]) — unidirectional and bidirectional
//!   ring reduce-scatter, all-gather, all-reduce and broadcast, executed
//!   *numerically* over real [`multipod_tensor::Tensor`] buffers with
//!   per-step timing from the simulated network. These are the ground-truth
//!   implementations the tests verify against scalar references.
//! * **The 2-D schedule** ([`twod`]) — the paper's optimized global
//!   summation: reduce-scatter along the torus Y rings, then along the X
//!   lines (payload 1/32nd), an optional weight-update at the shard owner,
//!   then broadcast X and Y. Supports the model-parallel variant whose X
//!   rings hop over model-parallelism neighbours.
//! * **Halo exchange** ([`halo`]) — boundary exchange for spatially
//!   partitioned convolutions (§3.1).
//! * **All-to-all** ([`alltoall`]) — the bisection-bound exchange behind
//!   DLRM's partitioned embedding lookups (§4.6).
//! * **Pipelined execution** ([`pipelined`]) — non-barrier timing of the
//!   same schedules, where chunks are forwarded the moment they arrive
//!   (how hardware collectives actually run).
//! * **α–β timing** ([`timing`]) — closed-form, topology-aware cost models
//!   for the same schedules, used at 4096-chip scale where materializing
//!   per-chip tensors is pointless. Parameters come from the same
//!   [`multipod_simnet::NetworkConfig`] the numeric layer uses.
//!
//! ```
//! use multipod_tensor::{Shape, Tensor};
//! use multipod_topology::{Multipod, MultipodConfig};
//! use multipod_simnet::{Network, NetworkConfig, SimTime};
//! use multipod_collectives::{ring, Precision};
//!
//! let mesh = Multipod::new(MultipodConfig::mesh(1, 4, true));
//! let mut net = Network::new(mesh, NetworkConfig::tpu_v3());
//! let ring_y = net.mesh().y_ring(0);
//! let inputs: Vec<Tensor> =
//!     (0..4).map(|i| Tensor::fill(Shape::of(&[8]), i as f32)).collect();
//! let out =
//!     ring::all_reduce(&mut net, &ring_y, &inputs, Precision::F32, SimTime::ZERO).unwrap();
//! // Every participant ends with the elementwise sum 0+1+2+3 = 6.
//! assert!(out.outputs.iter().all(|t| t.data().iter().all(|&v| v == 6.0)));
//! ```

pub mod alltoall;
pub mod degraded;
pub mod halo;
pub mod pipelined;
pub mod ring;
pub mod timing;
pub mod twod;

mod error;
mod precision;
mod schedule;

pub use degraded::{Degradation, Graceful};
pub use error::CollectiveError;
pub use precision::Precision;
pub use schedule::{ChunkMove, Schedule};

/// Track for spans attributed to `chip`, grouped under the chip's pod in
/// the exported trace.
pub(crate) fn chip_track(
    net: &multipod_simnet::Network,
    chip: multipod_topology::ChipId,
) -> multipod_trace::Track {
    multipod_trace::Track::Chip {
        pod: net.mesh().pod_of(chip),
        chip: chip.0,
    }
}

/// Records `span` on the network's trace sink, if one is attached.
pub(crate) fn emit_span(net: &multipod_simnet::Network, span: multipod_trace::SpanEvent) {
    if let Some(sink) = net.trace_sink() {
        sink.record_span(span);
    }
}
