//! Errors for collective operations.

use std::error::Error;
use std::fmt;

use multipod_simnet::NetworkError;
use multipod_tensor::TensorError;
use multipod_topology::TopologyError;

/// Error raised by collective execution.
#[derive(Debug, Clone, PartialEq)]
pub enum CollectiveError {
    /// Number of input buffers did not match ring membership.
    ParticipantMismatch {
        /// Buffers supplied.
        inputs: usize,
        /// Ring members.
        members: usize,
    },
    /// Input buffers disagree in shape.
    ShapeDisagreement,
    /// Payload length is not divisible into per-member chunks.
    IndivisiblePayload {
        /// Elements in the payload.
        elems: usize,
        /// Required divisor.
        parts: usize,
    },
    /// A ring cost model was asked for with a contention factor of zero
    /// (at least one concurrent offset ring must use the links).
    ZeroContentionFactor,
    /// The underlying network could not time a message (routing failure
    /// or an empty transfer).
    Network(NetworkError),
    /// A tensor operation failed.
    Tensor(TensorError),
}

impl fmt::Display for CollectiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CollectiveError::ParticipantMismatch { inputs, members } => {
                write!(f, "{inputs} input buffers for {members} ring members")
            }
            CollectiveError::ShapeDisagreement => {
                write!(f, "input buffers disagree in shape")
            }
            CollectiveError::IndivisiblePayload { elems, parts } => {
                write!(f, "payload of {elems} elements not divisible by {parts}")
            }
            CollectiveError::ZeroContentionFactor => {
                write!(f, "contention factor must be >= 1")
            }
            CollectiveError::Network(e) => write!(f, "network error: {e}"),
            CollectiveError::Tensor(e) => write!(f, "tensor error: {e}"),
        }
    }
}

impl Error for CollectiveError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CollectiveError::Network(e) => Some(e),
            CollectiveError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetworkError> for CollectiveError {
    fn from(e: NetworkError) -> Self {
        CollectiveError::Network(e)
    }
}

impl From<TopologyError> for CollectiveError {
    fn from(e: TopologyError) -> Self {
        CollectiveError::Network(NetworkError::Route(e))
    }
}

impl From<TensorError> for CollectiveError {
    fn from(e: TensorError) -> Self {
        CollectiveError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e = CollectiveError::ParticipantMismatch {
            inputs: 3,
            members: 4,
        };
        assert!(e.to_string().contains("3"));
        assert!(e.source().is_none());
        let n = CollectiveError::from(TopologyError::NoRoute {
            from: multipod_topology::ChipId(0),
            to: multipod_topology::ChipId(1),
        });
        assert!(n.source().is_some());
    }
}
