//! Typed degradation reporting for collectives on a faulty mesh.
//!
//! The routing layer silently detours around failed links (§2: sparse
//! routing on the cross-pod optical network), which keeps collectives
//! *correct* but hides the fact that they got *slower*. The graceful
//! variants here compare every ring edge's actual route against the route
//! a healthy mesh would use and surface the difference as a typed
//! [`Degradation`] instead of absorbing it, so callers (the trainer, fault
//! campaigns, benches) can observe the degraded window explicitly.

use multipod_simnet::{Network, SimTime};
use multipod_tensor::Tensor;
use multipod_topology::{Multipod, Ring};
use multipod_trace::{SpanCategory, SpanEvent};

use crate::ring::{self, CollectiveOutput};
use crate::{chip_track, emit_span, CollectiveError, Precision};

/// How far a ring's routing has strayed from the healthy-mesh plan.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Degradation {
    /// Ring edges whose current route is longer than the healthy route.
    pub broken_edges: usize,
    /// Total extra hops across all edges, relative to a healthy mesh.
    pub extra_hops: usize,
}

/// A collective result annotated with whether (and how badly) the ring was
/// degraded by failed links while it ran.
#[derive(Clone, Debug)]
pub struct Graceful<T> {
    /// The collective's output; numerically identical to the fault-free
    /// result (detours change timing, not membership).
    pub output: T,
    /// `Some` when at least one ring edge detoured around a failed link.
    pub degradation: Option<Degradation>,
}

impl<T> Graceful<T> {
    /// Whether the collective ran over any detoured edge.
    pub fn is_degraded(&self) -> bool {
        self.degradation.is_some()
    }
}

/// Compares every logical ring edge's current route against the route of a
/// fully healed copy of `mesh`.
///
/// Returns `Ok(None)` when every edge routes at its healthy hop count,
/// `Ok(Some(..))` when at least one edge detours.
///
/// # Errors
///
/// Returns [`CollectiveError::Network`] when an edge has no route at all
/// (the ring cannot run and the caller must re-plan membership).
pub fn ring_degradation(
    mesh: &Multipod,
    ring: &Ring,
) -> Result<Option<Degradation>, CollectiveError> {
    if ring.len() < 2 {
        return Ok(None);
    }
    let mut healthy = mesh.clone();
    healthy.heal_all_links();
    let mut degradation = Degradation::default();
    let members = ring.members();
    let n = members.len();
    // Ring schedules move chunks along every logical edge, including the
    // wrap edge of open chains (which the network routes across the mesh),
    // so all n edges are inspected.
    for i in 0..n {
        let from = members[i];
        let to = members[(i + 1) % n];
        let actual = mesh.route(from, to)?.num_hops();
        let nominal = healthy
            .route(from, to)
            .map(|r| r.num_hops())
            .unwrap_or(actual);
        if actual > nominal {
            degradation.broken_edges += 1;
            degradation.extra_hops += actual - nominal;
        }
    }
    Ok((degradation.broken_edges > 0).then_some(degradation))
}

/// [`ring::all_reduce`] with a typed degradation report.
///
/// When the ring runs over detoured edges, the result carries a
/// [`Degradation`] and a `degraded-collective` fault span is emitted on
/// the ring's first member so campaigns can see the slow window in the
/// Chrome-trace export.
///
/// # Errors
///
/// See [`ring::all_reduce`]; additionally fails with
/// [`CollectiveError::Network`] when an edge is fully unroutable.
pub fn all_reduce_graceful(
    net: &mut Network,
    ring: &Ring,
    inputs: &[Tensor],
    precision: Precision,
    start: SimTime,
) -> Result<Graceful<CollectiveOutput>, CollectiveError> {
    let degradation = ring_degradation(net.mesh(), ring)?;
    let output = ring::all_reduce(net, ring, inputs, precision, start)?;
    if let Some(d) = degradation {
        emit_span(
            net,
            SpanEvent::new(
                chip_track(net, ring.members()[0]),
                SpanCategory::Fault,
                "degraded-collective",
                start,
                output.time,
            )
            .with_arg("broken_edges", d.broken_edges as f64)
            .with_arg("extra_hops", d.extra_hops as f64),
        );
    }
    Ok(Graceful {
        output,
        degradation,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use multipod_simnet::NetworkConfig;
    use multipod_tensor::Shape;
    use multipod_topology::{Multipod, MultipodConfig};

    fn column_net(y: u32) -> (Network, Ring) {
        let mesh = Multipod::new(MultipodConfig::mesh(1, y, true));
        let net = Network::new(mesh, NetworkConfig::tpu_v3());
        let ring = net.mesh().y_ring(0);
        (net, ring)
    }

    fn inputs(n: usize, elems: usize) -> Vec<Tensor> {
        (0..n)
            .map(|i| Tensor::fill(Shape::vector(elems), i as f32))
            .collect()
    }

    #[test]
    fn healthy_ring_reports_no_degradation() {
        let (mut net, ring) = column_net(4);
        let ins = inputs(4, 8);
        let out =
            all_reduce_graceful(&mut net, &ring, &ins, Precision::F32, SimTime::ZERO).unwrap();
        assert!(!out.is_degraded());
        let reference = Tensor::sum_all(&ins).unwrap();
        for o in &out.output.outputs {
            assert_eq!(o, &reference);
        }
    }

    #[test]
    fn detoured_wrap_edge_is_reported_and_result_unchanged() {
        // 2-wide mesh so the Y ring has a detour when its wrap link fails.
        let mesh = Multipod::new(MultipodConfig::mesh(2, 4, true));
        let mut net = Network::new(mesh, NetworkConfig::tpu_v3());
        let ring = net.mesh().y_ring(0);
        let wrap_a = *ring.members().last().unwrap();
        let wrap_b = ring.members()[0];
        let ins = inputs(4, 8);
        let reference = Tensor::sum_all(&ins).unwrap();

        net.fail_link(wrap_a, wrap_b, SimTime::ZERO);
        let degraded =
            all_reduce_graceful(&mut net, &ring, &ins, Precision::F32, SimTime::ZERO).unwrap();
        let d = degraded.degradation.expect("wrap edge must be degraded");
        assert!(d.broken_edges >= 1);
        assert!(d.extra_hops >= 1);
        for o in &degraded.output.outputs {
            assert_eq!(o, &reference, "detour must not change the sum");
        }

        net.heal_link(wrap_a, wrap_b, SimTime::ZERO);
        let healed =
            all_reduce_graceful(&mut net, &ring, &ins, Precision::F32, SimTime::ZERO).unwrap();
        assert!(!healed.is_degraded());
        assert!(
            degraded.output.time > healed.output.time,
            "detour must cost time: degraded={} healed={}",
            degraded.output.time,
            healed.output.time
        );
    }

    #[test]
    fn degraded_collective_emits_a_fault_span() {
        use multipod_trace::{Recorder, SpanCategory, TraceEvent};
        let mesh = Multipod::new(MultipodConfig::mesh(2, 4, true));
        let mut net = Network::new(mesh, NetworkConfig::tpu_v3());
        let recorder = Recorder::shared();
        net.set_trace_sink(recorder.clone());
        let ring = net.mesh().y_ring(0);
        let wrap_a = *ring.members().last().unwrap();
        let wrap_b = ring.members()[0];
        net.fail_link(wrap_a, wrap_b, SimTime::ZERO);
        let ins = inputs(4, 8);
        all_reduce_graceful(&mut net, &ring, &ins, Precision::F32, SimTime::ZERO).unwrap();
        let fault_spans: Vec<String> = recorder
            .events()
            .into_iter()
            .filter_map(|e| match e {
                TraceEvent::Span(s) if s.category == SpanCategory::Fault => Some(s.name),
                _ => None,
            })
            .collect();
        assert!(fault_spans.contains(&"link-down".to_string()));
        assert!(fault_spans.contains(&"degraded-collective".to_string()));
    }

    #[test]
    fn unroutable_edge_is_a_typed_error() {
        // Non-torus 1-wide column: failing one Y link partitions the chain,
        // so there is no detour at all.
        let mesh = Multipod::new(MultipodConfig::mesh(1, 4, false));
        let mut net = Network::new(mesh, NetworkConfig::tpu_v3());
        let ring = net.mesh().y_ring(0);
        let a = ring.members()[1];
        let b = ring.members()[2];
        net.fail_link(a, b, SimTime::ZERO);
        let ins = inputs(4, 8);
        assert!(matches!(
            all_reduce_graceful(&mut net, &ring, &ins, Precision::F32, SimTime::ZERO),
            Err(CollectiveError::Network(_))
        ));
    }
}
