//! The paper's optimized 2-D global summation (§3.3, Figure 4).
//!
//! Gradient summation on the multipod proceeds in four pipelined phases:
//!
//! 1. reduce-scatter along the torus **Y** rings (bulk of the payload),
//! 2. reduce-scatter along the **X** lines on the Y-shards (payload is
//!    `1/y_len`, i.e. 32× smaller on the paper's machine),
//! 3. an optional **weight update** computed by the shard owner
//!    (weight-update sharding, §3.2),
//! 4. broadcast of the updated shards: all-gather along X, then Y.
//!
//! With model parallelism, the X-phase rings *hop over* the
//! model-parallelism neighbours (`stride = tile width`): only chips holding
//! the same weight shard sum their gradients (dotted blue rings in Fig. 4).
//!
//! The numeric entry point is [`two_dim_all_reduce`]; the α–β counterpart
//! is [`two_dim_all_reduce_time`].

use serde::{Deserialize, Serialize};

use multipod_simnet::{Network, SimTime};
use multipod_telemetry::{MetricId, Subsystem};
use multipod_tensor::Tensor;
use multipod_topology::ChipId;
use multipod_trace::{SpanCategory, SpanEvent, Track};

use crate::ring::{self, Direction};
use crate::timing::RingCosts;
use crate::{emit_span, CollectiveError, Precision, Schedule};

/// Per-phase breakdown of a 2-D all-reduce, seconds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TwoDimBreakdown {
    /// Phase 1: reduce-scatter along Y.
    pub y_reduce_scatter: f64,
    /// Phase 2: reduce-scatter along X.
    pub x_reduce_scatter: f64,
    /// Phase 4a: all-gather along X.
    pub x_all_gather: f64,
    /// Phase 4b: all-gather along Y.
    pub y_all_gather: f64,
}

impl TwoDimBreakdown {
    /// Total communication time.
    pub fn total(&self) -> f64 {
        self.y_reduce_scatter + self.x_reduce_scatter + self.x_all_gather + self.y_all_gather
    }
}

/// A weight-update hook applied at each shard owner between the reduce
/// and broadcast halves (weight-update sharding, §3.2).
pub type ShardUpdateFn<'a> = &'a mut dyn FnMut(ChipId, &mut Tensor);

/// Result of the numeric 2-D all-reduce.
#[derive(Clone, Debug)]
pub struct TwoDimOutput {
    /// Per-chip outputs in chip-id order: the sum over the chip's replica
    /// group (all chips with the same `x % stride` offset).
    pub outputs: Vec<Tensor>,
    /// Completion time.
    pub time: SimTime,
    /// Per-phase times.
    pub breakdown: TwoDimBreakdown,
}

/// Executes the 2-D gradient summation numerically over one tensor per
/// chip (chip-id order), with an optional weight-update applied at each
/// shard owner between the reduce and broadcast halves.
///
/// `model_stride` is the model-parallel tile width: 1 for pure data
/// parallelism; `k > 1` makes the X-phase rings hop over model peers so
/// that only same-shard chips reduce together.
///
/// # Errors
///
/// Fails when `inputs.len()` differs from the chip count, payloads do not
/// divide evenly across ring members, or shapes disagree.
pub fn two_dim_all_reduce(
    net: &mut Network,
    inputs: &[Tensor],
    precision: Precision,
    model_stride: u32,
    mut shard_update: Option<ShardUpdateFn<'_>>,
) -> Result<TwoDimOutput, CollectiveError> {
    let mesh = net.mesh().clone();
    if inputs.len() != mesh.num_chips() {
        return Err(CollectiveError::ParticipantMismatch {
            inputs: inputs.len(),
            members: mesh.num_chips(),
        });
    }
    let shape = inputs[0].shape().clone();
    let x_len = mesh.x_len();
    let y_len = mesh.y_len();

    // Phase 1: reduce-scatter along every Y ring (all columns concurrent).
    let mut y_shards: Vec<Option<Tensor>> = vec![None; inputs.len()];
    let mut phase_end = SimTime::ZERO;
    for x in 0..x_len {
        let ring_y = mesh.y_ring(x);
        let col_inputs: Vec<Tensor> = ring_y
            .members()
            .iter()
            .map(|c| inputs[c.index()].clone())
            .collect();
        let rs = ring::reduce_scatter(
            net,
            &ring_y,
            &col_inputs,
            precision,
            Direction::Forward,
            SimTime::ZERO,
        )?;
        for (member, shard) in ring_y.members().iter().zip(rs.shards) {
            y_shards[member.index()] = Some(shard);
        }
        phase_end = phase_end.max(rs.time);
    }
    let y_rs_end = phase_end;

    // Phase 2: reduce-scatter along X (strided over model peers).
    let mut x_shards: Vec<Option<Tensor>> = vec![None; inputs.len()];
    let mut x_rs_end = y_rs_end;
    for y in 0..y_len {
        for offset in 0..model_stride {
            let ring_x = mesh.x_line_strided(y, offset, model_stride);
            if ring_x.len() < 2 {
                for &member in ring_x.members() {
                    x_shards[member.index()] = y_shards[member.index()].clone();
                }
                continue;
            }
            // Invariant, not input-dependent: phase 1 filled `y_shards` for
            // every chip (each chip is in exactly one Y ring), so this
            // cannot fire for any caller-supplied payload.
            let row_inputs: Vec<Tensor> = ring_x
                .members()
                .iter()
                .map(|c| {
                    y_shards[c.index()]
                        .clone()
                        .expect("phase 1 filled every y shard")
                })
                .collect();
            let rs = ring::reduce_scatter(
                net,
                &ring_x,
                &row_inputs,
                precision,
                Direction::Forward,
                y_rs_end,
            )?;
            for (i, member) in ring_x.members().iter().enumerate() {
                x_shards[member.index()] = Some(rs.shards[i].clone());
            }
            x_rs_end = x_rs_end.max(rs.time);
        }
    }

    // Phase 3: the shard owner updates its slice (weight-update sharding).
    if let Some(update) = shard_update.as_mut() {
        for chip in mesh.chips() {
            if let Some(shard) = x_shards[chip.index()].as_mut() {
                update(chip, shard);
            }
        }
    }

    // Phase 4a: all-gather along X.
    let mut x_full: Vec<Option<Tensor>> = vec![None; inputs.len()];
    let mut x_ag_end = x_rs_end;
    for y in 0..y_len {
        for offset in 0..model_stride {
            let ring_x = mesh.x_line_strided(y, offset, model_stride);
            if ring_x.len() < 2 {
                for &member in ring_x.members() {
                    x_full[member.index()] = x_shards[member.index()].clone();
                }
                continue;
            }
            // Invariant: phase 2 filled `x_shards` for every chip (falling
            // back to the Y shard on sub-2-member rings).
            let shards: Vec<Tensor> = ring_x
                .members()
                .iter()
                .map(|c| {
                    x_shards[c.index()]
                        .clone()
                        .expect("phase 2 filled every x shard")
                })
                .collect();
            let ag = ring::all_gather(
                net,
                &ring_x,
                &shards,
                precision,
                Direction::Forward,
                x_rs_end,
            )?;
            for (i, member) in ring_x.members().iter().enumerate() {
                x_full[member.index()] = Some(ag.outputs[i].clone());
            }
            x_ag_end = x_ag_end.max(ag.time);
        }
    }

    // Phase 4b: all-gather along Y.
    let mut outputs: Vec<Option<Tensor>> = vec![None; inputs.len()];
    let mut y_ag_end = x_ag_end;
    for x in 0..x_len {
        let ring_y = mesh.y_ring(x);
        if ring_y.len() < 2 {
            for &member in ring_y.members() {
                outputs[member.index()] = x_full[member.index()].clone();
            }
            continue;
        }
        // Invariant: phase 4a filled `x_full` for every chip.
        let shards: Vec<Tensor> = ring_y
            .members()
            .iter()
            .map(|c| {
                x_full[c.index()]
                    .clone()
                    .expect("phase 4a filled every x payload")
            })
            .collect();
        let ag = ring::all_gather(
            net,
            &ring_y,
            &shards,
            precision,
            Direction::Forward,
            x_ag_end,
        )?;
        for (i, member) in ring_y.members().iter().enumerate() {
            outputs[member.index()] = Some(ag.outputs[i].clone());
        }
        y_ag_end = y_ag_end.max(ag.time);
    }

    // Machine-wide phase spans on the simulation track, with the α/β
    // attribution the analytic model assigns to each phase. The same
    // per-phase numbers flow into the telemetry registry when attached.
    if net.trace_sink().is_some() || net.telemetry().is_some() {
        let elems = inputs[0].len();
        let x_elems = elems.div_ceil(y_len.max(1) as usize);
        let y_costs = RingCosts::from_ring(net, &mesh.y_ring(0), 1)?;
        let x_costs =
            RingCosts::from_ring(net, &mesh.x_line_strided(0, 0, model_stride), model_stride)?;
        let phase = |name: &str, s: SimTime, e: SimTime, costs: &RingCosts, phase_elems: usize| {
            let alpha = costs.phase_alpha_seconds();
            let beta = costs.phase_beta_seconds(phase_elems, precision, false);
            let bytes = precision.wire_bytes(phase_elems);
            if net.trace_sink().is_some() {
                emit_span(
                    net,
                    SpanEvent::new(Track::Sim, SpanCategory::CollectivePhase, name, s, e)
                        .with_bytes(bytes)
                        .with_arg("alpha_seconds", alpha)
                        .with_arg("beta_seconds", beta),
                );
            }
            if let Some(telemetry) = net.telemetry() {
                telemetry.observe(
                    MetricId::labeled(Subsystem::Collectives, "phase_seconds", name),
                    e - s,
                );
                telemetry.inc_counter(
                    MetricId::labeled(Subsystem::Collectives, "phase_bytes", name),
                    bytes,
                );
                telemetry.observe(
                    MetricId::labeled(Subsystem::Collectives, "model_alpha_seconds", name),
                    alpha,
                );
                telemetry.observe(
                    MetricId::labeled(Subsystem::Collectives, "model_beta_seconds", name),
                    beta,
                );
            }
        };
        phase("y-reduce-scatter", SimTime::ZERO, y_rs_end, &y_costs, elems);
        phase("x-reduce-scatter", y_rs_end, x_rs_end, &x_costs, x_elems);
        phase("x-all-gather", x_rs_end, x_ag_end, &x_costs, x_elems);
        phase("y-all-gather", x_ag_end, y_ag_end, &y_costs, elems);
        if net.trace_sink().is_some() {
            emit_span(
                net,
                SpanEvent::new(
                    Track::Sim,
                    SpanCategory::Collective,
                    "2d-all-reduce",
                    SimTime::ZERO,
                    y_ag_end,
                )
                .with_bytes(precision.wire_bytes(elems))
                .with_arg("model_stride", model_stride as f64),
            );
        }
        if let Some(telemetry) = net.telemetry() {
            telemetry.inc_counter(MetricId::new(Subsystem::Collectives, "all_reduces"), 1);
            telemetry.observe(
                MetricId::new(Subsystem::Collectives, "all_reduce_seconds"),
                y_ag_end - SimTime::ZERO,
            );
        }
    }

    // The per-chip fill is an invariant of the phase structure; the final
    // reshape back to the caller's shape surfaces typed rather than
    // panicking on a pathological tensor state.
    let mut reshaped: Vec<Tensor> = Vec::with_capacity(outputs.len());
    for t in outputs {
        reshaped.push(
            t.expect("phase 4b filled every output")
                .reshape(shape.clone())?,
        );
    }
    let outputs = reshaped;
    Ok(TwoDimOutput {
        outputs,
        time: y_ag_end,
        breakdown: TwoDimBreakdown {
            y_reduce_scatter: y_rs_end - SimTime::ZERO,
            x_reduce_scatter: x_rs_end - y_rs_end,
            x_all_gather: x_ag_end - x_rs_end,
            y_all_gather: y_ag_end - x_ag_end,
        },
    })
}

/// The index of the (flattened) payload chunk that `chip` owns between
/// the reduce and broadcast halves of [`two_dim_all_reduce`] — i.e. which
/// slice of `payload.split(0, shards)` a weight-update closure receives.
/// Total shards = `y_len × (x_len / model_stride)`.
///
/// # Panics
///
/// Panics when `model_stride` does not divide the mesh X extent.
pub fn shard_index(mesh: &multipod_topology::Multipod, chip: ChipId, model_stride: u32) -> usize {
    let c = mesh.coord_of(chip);
    let y_len = mesh.y_len() as usize;
    let y_chunk = if y_len < 2 {
        0
    } else {
        Schedule::reduce_scatter(y_len, Direction::Forward).owned_chunk(c.y as usize)
    };
    assert_eq!(mesh.x_len() % model_stride, 0, "stride must divide x_len");
    let x_members = (mesh.x_len() / model_stride) as usize;
    if x_members < 2 {
        return y_chunk;
    }
    let x_idx = (c.x / model_stride) as usize;
    let x_chunk = Schedule::reduce_scatter(x_members, Direction::Forward).owned_chunk(x_idx);
    y_chunk * x_members + x_chunk
}

/// α–β time for the 2-D all-reduce of `elems` gradient elements per
/// replica, with optional model-parallel stride.
///
/// Matches the schedule of [`two_dim_all_reduce`] but uses bidirectional
/// rings (the production configuration) and never materializes tensors.
///
/// # Errors
///
/// See [`RingCosts::from_ring`]: an unroutable ring hop (degraded mesh) or
/// a zero contention factor surfaces as a typed [`CollectiveError`].
pub fn two_dim_all_reduce_time(
    net: &Network,
    elems: usize,
    precision: Precision,
    model_stride: u32,
) -> Result<TwoDimBreakdown, CollectiveError> {
    let mesh = net.mesh();
    let y_costs = RingCosts::from_ring(net, &mesh.y_ring(0), 1)?;
    let x_ring = mesh.x_line_strided(0, 0, model_stride);
    let x_costs = RingCosts::from_ring(net, &x_ring, model_stride)?;
    let y_len = mesh.y_len() as usize;
    let x_elems = elems.div_ceil(y_len.max(1));
    Ok(TwoDimBreakdown {
        y_reduce_scatter: y_costs.reduce_scatter_time(elems, precision, true),
        x_reduce_scatter: x_costs.reduce_scatter_time(x_elems, precision, true),
        x_all_gather: x_costs.all_gather_time(x_elems, precision, true),
        y_all_gather: y_costs.all_gather_time(elems, precision, true),
    })
}

/// Splits `elems` into `buckets` near-equal chunks: the first
/// `elems % buckets` buckets get one extra element. Every bucket is
/// non-empty only while `buckets <= elems`; trailing buckets of an
/// over-split payload are zero-sized (and cost only the per-phase α).
pub fn bucket_sizes(elems: usize, buckets: usize) -> Vec<usize> {
    let buckets = buckets.max(1);
    let base = elems / buckets;
    let extra = elems % buckets;
    (0..buckets)
        .map(|i| base + usize::from(i < extra))
        .collect()
}

/// α–β times for a **bucketed** 2-D all-reduce: the gradient payload is
/// split into `buckets` chunks (see [`bucket_sizes`]) and each chunk runs
/// the full Y-then-X schedule on its own. This is the chunked schedule
/// the deferred task-graph runtime overlaps with backprop — bucket `i`
/// can start its Y reduce-scatter as soon as backprop has produced the
/// gradients of the layers in bucket `i`, instead of waiting for the
/// whole backward pass.
///
/// More buckets mean more α (per-phase latency) cost: the bucket times
/// sum to at least the single-shot [`two_dim_all_reduce_time`], and the
/// gap grows with the bucket count. The payoff is overlap, not raw
/// collective speed.
///
/// # Errors
///
/// See [`RingCosts::from_ring`]: an unroutable ring hop (degraded mesh)
/// or a zero contention factor surfaces as a typed [`CollectiveError`].
pub fn bucketed_two_dim_all_reduce_time(
    net: &Network,
    elems: usize,
    precision: Precision,
    model_stride: u32,
    buckets: usize,
) -> Result<Vec<TwoDimBreakdown>, CollectiveError> {
    let mesh = net.mesh();
    let y_costs = RingCosts::from_ring(net, &mesh.y_ring(0), 1)?;
    let x_ring = mesh.x_line_strided(0, 0, model_stride);
    let x_costs = RingCosts::from_ring(net, &x_ring, model_stride)?;
    let y_len = mesh.y_len() as usize;
    Ok(bucket_sizes(elems, buckets)
        .into_iter()
        .map(|bucket_elems| {
            let x_elems = bucket_elems.div_ceil(y_len.max(1));
            TwoDimBreakdown {
                y_reduce_scatter: y_costs.reduce_scatter_time(bucket_elems, precision, true),
                x_reduce_scatter: x_costs.reduce_scatter_time(x_elems, precision, true),
                x_all_gather: x_costs.all_gather_time(x_elems, precision, true),
                y_all_gather: y_costs.all_gather_time(bucket_elems, precision, true),
            }
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use multipod_simnet::NetworkConfig;
    use multipod_tensor::{Shape, TensorRng};
    use multipod_topology::{Multipod, MultipodConfig};

    fn setup(x: u32, y: u32) -> Network {
        Network::new(
            Multipod::new(MultipodConfig::mesh(x, y, true)),
            NetworkConfig::tpu_v3(),
        )
    }

    fn random_inputs(n: usize, elems: usize, seed: u64) -> Vec<Tensor> {
        let mut rng = TensorRng::seed(seed);
        (0..n)
            .map(|_| rng.uniform(Shape::vector(elems), -1.0, 1.0))
            .collect()
    }

    #[test]
    fn data_parallel_sum_over_all_chips() {
        let mut net = setup(4, 4);
        let n = net.mesh().num_chips();
        let ins = random_inputs(n, 64, 7);
        let reference = Tensor::sum_all(&ins).unwrap();
        let out = two_dim_all_reduce(&mut net, &ins, Precision::F32, 1, None).unwrap();
        for (i, o) in out.outputs.iter().enumerate() {
            assert!(o.max_abs_diff(&reference) < 1e-4, "chip {i}");
        }
        assert!(out.time > SimTime::ZERO);
    }

    #[test]
    fn phases_are_ordered_and_positive() {
        let mut net = setup(4, 4);
        let n = net.mesh().num_chips();
        let ins = random_inputs(n, 64, 8);
        let out = two_dim_all_reduce(&mut net, &ins, Precision::F32, 1, None).unwrap();
        let b = out.breakdown;
        assert!(b.y_reduce_scatter > 0.0);
        assert!(b.x_reduce_scatter > 0.0);
        assert!(b.x_all_gather > 0.0);
        assert!(b.y_all_gather > 0.0);
        assert!((b.total() - out.time.seconds()).abs() < 1e-9);
    }

    #[test]
    fn model_parallel_groups_sum_separately() {
        // 8 chips wide, stride 2: even-x chips form one replica group,
        // odd-x the other.
        let mut net = setup(8, 4);
        let mesh = net.mesh().clone();
        let n = mesh.num_chips();
        let ins = random_inputs(n, 32, 9);
        let out = two_dim_all_reduce(&mut net, &ins, Precision::F32, 2, None).unwrap();
        for offset in 0..2u32 {
            let group: Vec<Tensor> = mesh
                .chips()
                .filter(|&c| mesh.coord_of(c).x % 2 == offset)
                .map(|c| ins[c.index()].clone())
                .collect();
            let reference = Tensor::sum_all(&group).unwrap();
            for chip in mesh.chips().filter(|&c| mesh.coord_of(c).x % 2 == offset) {
                assert!(
                    out.outputs[chip.index()].max_abs_diff(&reference) < 1e-4,
                    "chip {chip}"
                );
            }
        }
    }

    #[test]
    fn shard_index_names_the_owned_slice() {
        // The closure's shard must equal payload.split(shards)[shard_index].
        let mut net = setup(4, 4);
        let mesh = net.mesh().clone();
        let n = mesh.num_chips();
        let ins = random_inputs(n, 64, 12);
        let reference = Tensor::sum_all(&ins).unwrap();
        let expected = reference.split(0, n).unwrap();
        let mut seen = std::collections::HashSet::new();
        let mut check = |chip: ChipId, shard: &mut Tensor| {
            let idx = shard_index(&mesh, chip, 1);
            assert!(
                shard.max_abs_diff(&expected[idx]) < 1e-4,
                "chip {chip} does not own shard {idx}"
            );
            assert!(seen.insert(idx), "shard {idx} owned twice");
        };
        two_dim_all_reduce(&mut net, &ins, Precision::F32, 1, Some(&mut check)).unwrap();
        assert_eq!(seen.len(), n);
    }

    #[test]
    fn shard_update_is_applied_everywhere() {
        // Updating each shard (scale by 2) must yield 2 * sum at every chip:
        // exactly the weight-update-sharding dataflow of §3.2.
        let mut net = setup(4, 4);
        let n = net.mesh().num_chips();
        let ins = random_inputs(n, 64, 10);
        let reference = Tensor::sum_all(&ins).unwrap().scale(2.0);
        let mut update = |_chip: ChipId, shard: &mut Tensor| {
            *shard = shard.scale(2.0);
        };
        let out = two_dim_all_reduce(&mut net, &ins, Precision::F32, 1, Some(&mut update)).unwrap();
        for o in &out.outputs {
            assert!(o.max_abs_diff(&reference) < 1e-4);
        }
    }

    #[test]
    fn x_dimension_carries_y_len_times_less_payload() {
        // §3.3 verbatim: "the payload transferred along the X-dimension is
        // 32 times less than the data transferred along the Y-dimension."
        // On this 8-row mesh the factor is y_len = 8; the simulator's
        // per-link byte counters measure it directly.
        let mut net = setup(8, 8);
        let n = net.mesh().num_chips();
        let ins = random_inputs(n, 1 << 12, 3);
        net.clear_traffic_stats();
        two_dim_all_reduce(&mut net, &ins, Precision::F32, 1, None).unwrap();
        let (x_bytes, y_bytes) = net.traffic_by_dimension();
        let ratio = y_bytes as f64 / x_bytes as f64;
        // The logical payload ratio is y_len = 8. Physical X-link bytes
        // are inflated up to ~2x because the open X chain's logical wrap
        // edge re-crosses the whole row (the torus Y wrap is free), so
        // the measured link-byte ratio sits between y_len/2 and y_len.
        assert!(
            (4.0..11.0).contains(&ratio),
            "expected ~{}x more Y traffic, got {ratio} ({y_bytes} vs {x_bytes})",
            net.mesh().y_len()
        );
    }

    #[test]
    fn timing_layer_x_phase_is_latency_bound() {
        let net = Network::new(
            Multipod::new(MultipodConfig::multipod(4)),
            NetworkConfig::tpu_v3(),
        );
        // ResNet-50-sized payload: the Y phase dominates on bytes, the X
        // phase is dominated by its 127 latency-bound line steps. Together
        // they land in the low-millisecond range the paper's Fig. 6
        // breakdown implies (~3 ms all-reduce at 4096 chips).
        let b = two_dim_all_reduce_time(&net, 25_600_000, Precision::F32, 1).unwrap();
        assert!(b.total() > 1e-3 && b.total() < 8e-3, "total={}", b.total());
        // Doubling payload moves Y but barely moves X.
        let b2 = two_dim_all_reduce_time(&net, 51_200_000, Precision::F32, 1).unwrap();
        assert!(b2.y_reduce_scatter > 1.8 * b.y_reduce_scatter);
        assert!(b2.x_reduce_scatter < 1.2 * b.x_reduce_scatter);
    }

    #[test]
    fn timing_layer_strided_rings_pay_contention() {
        // Hold the ring membership fixed (32 members) and compare a dense
        // ring against a stride-4 peer ring whose 4 offset copies share the
        // same X links: the strided ring must be slower per §3.3's
        // communication-overhead discussion.
        let wide = Network::new(
            Multipod::new(MultipodConfig::mesh(128, 1, false)),
            NetworkConfig::tpu_v3(),
        );
        let narrow = Network::new(
            Multipod::new(MultipodConfig::mesh(32, 1, false)),
            NetworkConfig::tpu_v3(),
        );
        let strided = RingCosts::from_ring(&wide, &wide.mesh().x_line_strided(0, 0, 4), 4).unwrap();
        let dense = RingCosts::from_ring(&narrow, &narrow.mesh().x_line(0), 1).unwrap();
        assert_eq!(strided.n, dense.n);
        let elems = 1 << 24; // bandwidth-dominated
        let t_strided = strided.all_reduce_time(elems, Precision::Bf16, true);
        let t_dense = dense.all_reduce_time(elems, Precision::Bf16, true);
        assert!(
            t_strided > 2.0 * t_dense,
            "strided={t_strided} dense={t_dense}"
        );
    }

    #[test]
    fn rejects_wrong_input_count() {
        let mut net = setup(2, 2);
        let ins = random_inputs(3, 16, 1);
        assert!(matches!(
            two_dim_all_reduce(&mut net, &ins, Precision::F32, 1, None),
            Err(CollectiveError::ParticipantMismatch { .. })
        ));
    }

    #[test]
    fn numeric_and_timing_layers_agree_on_shape() {
        // Same mesh, same payload: the α–β total should be within a small
        // factor of the numeric barrier-step simulation (they model the
        // same schedule with different synchronization assumptions).
        let mut net = setup(8, 8);
        let n = net.mesh().num_chips();
        let elems = 1 << 14;
        let ins = random_inputs(n, elems, 11);
        let numeric = two_dim_all_reduce(&mut net, &ins, Precision::F32, 1, None).unwrap();
        let fresh = setup(8, 8);
        let analytic = two_dim_all_reduce_time(&fresh, elems, Precision::F32, 1).unwrap();
        let ratio = numeric.time.seconds() / analytic.total();
        assert!(
            (0.3..6.0).contains(&ratio),
            "numeric={} analytic={} ratio={ratio}",
            numeric.time.seconds(),
            analytic.total()
        );
    }

    #[test]
    fn bucket_sizes_partition_the_payload() {
        assert_eq!(bucket_sizes(10, 4), vec![3, 3, 2, 2]);
        assert_eq!(bucket_sizes(8, 1), vec![8]);
        assert_eq!(bucket_sizes(2, 4), vec![1, 1, 0, 0]);
        assert_eq!(bucket_sizes(0, 3), vec![0, 0, 0]);
        // buckets = 0 is clamped to one bucket, never a division by zero.
        assert_eq!(bucket_sizes(5, 0), vec![5]);
        for (elems, buckets) in [(25_600_000usize, 7usize), (13, 13), (1, 64)] {
            let sizes = bucket_sizes(elems, buckets);
            assert_eq!(sizes.iter().sum::<usize>(), elems);
            assert_eq!(sizes.len(), buckets);
        }
    }

    #[test]
    fn one_bucket_matches_the_single_shot_schedule() {
        let net = setup(16, 8);
        let single = two_dim_all_reduce_time(&net, 1 << 20, Precision::F32, 1).unwrap();
        let bucketed =
            bucketed_two_dim_all_reduce_time(&net, 1 << 20, Precision::F32, 1, 1).unwrap();
        assert_eq!(bucketed.len(), 1);
        assert_eq!(bucketed[0], single);
    }

    #[test]
    fn bucketing_pays_alpha_but_stays_close() {
        let net = setup(32, 16);
        // BERT-scale payload: bandwidth dominates, so bucket α stays small.
        let elems = 334_000_000;
        let single = two_dim_all_reduce_time(&net, elems, Precision::F32, 1)
            .unwrap()
            .total();
        let mut prev_sum = single;
        for buckets in [2usize, 8, 32] {
            let sum: f64 =
                bucketed_two_dim_all_reduce_time(&net, elems, Precision::F32, 1, buckets)
                    .unwrap()
                    .iter()
                    .map(TwoDimBreakdown::total)
                    .sum();
            // More buckets cost more α (the sum grows monotonically with
            // the bucket count) but stay within a small multiple of the
            // single shot — the overlap win must not be eaten by latency.
            assert!(sum >= prev_sum - 1e-12, "buckets={buckets}");
            assert!(
                sum < 2.0 * single,
                "buckets={buckets} sum={sum} single={single}"
            );
            prev_sum = sum;
        }
    }

    #[test]
    fn bucketed_respects_model_stride() {
        let net = setup(16, 8);
        let rows = bucketed_two_dim_all_reduce_time(&net, 1 << 18, Precision::Bf16, 4, 4).unwrap();
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(r.total() > 0.0);
        }
    }
}
