//! Pure ring-collective schedules.
//!
//! A [`Schedule`] is the communication pattern of a ring collective,
//! independent of payload contents. The numeric executor ([`crate::ring`])
//! moves real tensor chunks along it; the α–β layer ([`crate::timing`])
//! charges bytes for the same moves. Keeping the pattern in one place
//! guarantees the two layers model the same algorithm.

use serde::{Deserialize, Serialize};

use crate::ring::Direction;

/// One chunk transfer between ring members within a step.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChunkMove {
    /// Sending member index.
    pub from: usize,
    /// Receiving member index.
    pub to: usize,
    /// Which of the `n` payload chunks moves.
    pub chunk: usize,
    /// `true` when the receiver accumulates (reduce-scatter) rather than
    /// stores (all-gather).
    pub reduce: bool,
}

/// The full step-by-step pattern of a ring collective over `n` members.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schedule {
    n: usize,
    direction: Direction,
    steps: Vec<Vec<ChunkMove>>,
    reduce: bool,
}

impl Schedule {
    /// The classic `n-1`-step ring reduce-scatter.
    ///
    /// After execution, member `i` owns the fully reduced chunk
    /// [`Schedule::owned_chunk`]`(i)`.
    ///
    /// # Panics
    ///
    /// Panics when `n == 0`.
    pub fn reduce_scatter(n: usize, direction: Direction) -> Schedule {
        assert!(n > 0, "ring must have members");
        let steps = (0..n.saturating_sub(1))
            .map(|s| {
                (0..n)
                    .map(|i| ChunkMove {
                        from: i,
                        to: Self::next(i, n, direction),
                        chunk: Self::rs_chunk(i, s, n, direction),
                        reduce: true,
                    })
                    .collect()
            })
            .collect();
        Schedule {
            n,
            direction,
            steps,
            reduce: true,
        }
    }

    /// The `n-1`-step ring all-gather. Member `i` is expected to start with
    /// chunk [`Schedule::owned_chunk`]`(i)` (i.e. the reduce-scatter
    /// output), and every member ends with all chunks.
    ///
    /// # Panics
    ///
    /// Panics when `n == 0`.
    pub fn all_gather(n: usize, direction: Direction) -> Schedule {
        assert!(n > 0, "ring must have members");
        let steps = (0..n.saturating_sub(1))
            .map(|s| {
                (0..n)
                    .map(|i| ChunkMove {
                        from: i,
                        to: Self::next(i, n, direction),
                        chunk: Self::ag_chunk(i, s, n, direction),
                        reduce: false,
                    })
                    .collect()
            })
            .collect();
        Schedule {
            n,
            direction,
            steps,
            reduce: false,
        }
    }

    /// Ring size.
    pub fn num_members(&self) -> usize {
        self.n
    }

    /// Steps, outermost first. All moves within a step are concurrent.
    pub fn steps(&self) -> &[Vec<ChunkMove>] {
        &self.steps
    }

    /// Travel direction.
    pub fn direction(&self) -> Direction {
        self.direction
    }

    /// The chunk member `i` owns after a reduce-scatter (equivalently, must
    /// hold before an all-gather).
    pub fn owned_chunk(&self, member: usize) -> usize {
        match self.direction {
            Direction::Forward => (member + 1) % self.n,
            Direction::Backward => (member + self.n - 1) % self.n,
        }
    }

    fn next(i: usize, n: usize, dir: Direction) -> usize {
        match dir {
            Direction::Forward => (i + 1) % n,
            Direction::Backward => (i + n - 1) % n,
        }
    }

    fn rs_chunk(i: usize, s: usize, n: usize, dir: Direction) -> usize {
        match dir {
            Direction::Forward => (i + n - s % n) % n,
            Direction::Backward => (i + s) % n,
        }
    }

    fn ag_chunk(i: usize, s: usize, n: usize, dir: Direction) -> usize {
        match dir {
            Direction::Forward => (i + 1 + n - s % n) % n,
            Direction::Backward => (i + n - 1 + s) % n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Replays a reduce-scatter schedule symbolically: each member starts
    /// with contribution sets {i} per chunk; at the end the owned chunk
    /// must contain all n contributions.
    fn verify_rs(n: usize, dir: Direction) {
        let sched = Schedule::reduce_scatter(n, dir);
        // contrib[member][chunk] = set of source members already summed in.
        let mut contrib: Vec<Vec<Vec<bool>>> = (0..n)
            .map(|i| {
                (0..n)
                    .map(|_| {
                        let mut v = vec![false; n];
                        v[i] = true;
                        v
                    })
                    .collect()
            })
            .collect();
        for step in sched.steps() {
            let snapshot = contrib.clone();
            for mv in step {
                assert!(mv.reduce);
                let incoming = snapshot[mv.from][mv.chunk].clone();
                for (dst, src) in contrib[mv.to][mv.chunk].iter_mut().zip(&incoming) {
                    *dst = *dst || *src;
                }
            }
        }
        for (i, member) in contrib.iter().enumerate() {
            let owned = sched.owned_chunk(i);
            assert!(
                member[owned].iter().all(|&b| b),
                "member {i} chunk {owned} incomplete for n={n} dir={dir:?}"
            );
        }
    }

    /// Replays an all-gather schedule symbolically: each member starts
    /// holding only its owned chunk; at the end it must hold all chunks.
    fn verify_ag(n: usize, dir: Direction) {
        let sched = Schedule::all_gather(n, dir);
        let mut has: Vec<Vec<bool>> = (0..n)
            .map(|i| {
                let mut v = vec![false; n];
                v[sched.owned_chunk(i)] = true;
                v
            })
            .collect();
        for step in sched.steps() {
            let snapshot = has.clone();
            for mv in step {
                assert!(!mv.reduce);
                assert!(
                    snapshot[mv.from][mv.chunk],
                    "member {} sends chunk {} it does not hold (n={n}, {dir:?})",
                    mv.from, mv.chunk
                );
                has[mv.to][mv.chunk] = true;
            }
        }
        for (i, v) in has.iter().enumerate() {
            assert!(v.iter().all(|&b| b), "member {i} missing chunks (n={n})");
        }
    }

    #[test]
    fn reduce_scatter_completes_for_many_sizes() {
        for n in 1..=9 {
            verify_rs(n, Direction::Forward);
            verify_rs(n, Direction::Backward);
        }
        verify_rs(32, Direction::Forward);
        verify_rs(32, Direction::Backward);
    }

    #[test]
    fn all_gather_completes_for_many_sizes() {
        for n in 1..=9 {
            verify_ag(n, Direction::Forward);
            verify_ag(n, Direction::Backward);
        }
        verify_ag(32, Direction::Forward);
    }

    #[test]
    fn step_counts_are_n_minus_one() {
        assert_eq!(
            Schedule::reduce_scatter(8, Direction::Forward)
                .steps()
                .len(),
            7
        );
        assert_eq!(
            Schedule::all_gather(8, Direction::Backward).steps().len(),
            7
        );
        assert_eq!(
            Schedule::reduce_scatter(1, Direction::Forward)
                .steps()
                .len(),
            0
        );
    }

    #[test]
    fn owned_chunks_are_a_permutation() {
        for dir in [Direction::Forward, Direction::Backward] {
            let sched = Schedule::reduce_scatter(8, dir);
            let mut owned: Vec<usize> = (0..8).map(|i| sched.owned_chunk(i)).collect();
            owned.sort_unstable();
            assert_eq!(owned, (0..8).collect::<Vec<_>>());
        }
    }

    #[test]
    fn forward_and_backward_use_disjoint_directed_edges() {
        let f = Schedule::reduce_scatter(6, Direction::Forward);
        let b = Schedule::reduce_scatter(6, Direction::Backward);
        let fe: Vec<(usize, usize)> = f.steps()[0].iter().map(|m| (m.from, m.to)).collect();
        for mv in &b.steps()[0] {
            assert!(!fe.contains(&(mv.from, mv.to)));
        }
    }
}
