//! All-to-all exchange.
//!
//! DLRM's partitioned embedding tables answer lookups with an all-to-all
//! (each chip sends every other chip the rows it owns for that chip's
//! samples, §4.6); GShard-style sparse models use the same primitive
//! (§4.3 contrasts the Transformer's dense sharding with it). Unlike the
//! ring collectives, all-to-all is **bisection-bound** on a mesh: every
//! payload crosses the cut, so time scales with total bytes over bisection
//! bandwidth rather than per-ring payload.

use multipod_simnet::{Network, SimTime};
use multipod_tensor::Tensor;
use multipod_topology::ChipId;

use multipod_trace::{SpanCategory, SpanEvent};

use crate::ring::CollectiveOutput;
use crate::{chip_track, emit_span, CollectiveError, Precision};

/// All-to-all over `chips`: participant `i` supplies `inputs[i]`, a
/// tensor whose axis 0 splits into `n` equal blocks; block `j` of
/// participant `i` travels to participant `j`. Participant `j` ends with
/// the concatenation of block `j` from every participant (in participant
/// order).
///
/// Every pairwise message is routed and timed on the network, so mesh
/// bisection contention emerges from link occupancy rather than a formula.
///
/// # Errors
///
/// Fails on participant/shape mismatches, blocks that do not divide, or
/// unroutable messages.
pub fn all_to_all(
    net: &mut Network,
    chips: &[ChipId],
    inputs: &[Tensor],
    precision: Precision,
    start: SimTime,
) -> Result<CollectiveOutput, CollectiveError> {
    let n = chips.len();
    if inputs.len() != n || n == 0 {
        return Err(CollectiveError::ParticipantMismatch {
            inputs: inputs.len(),
            members: n,
        });
    }
    if inputs.iter().any(|t| t.shape() != inputs[0].shape()) {
        return Err(CollectiveError::ShapeDisagreement);
    }
    // Split every input into n blocks along axis 0.
    let blocks: Vec<Vec<Tensor>> = inputs
        .iter()
        .map(|t| t.split(0, n).map_err(CollectiveError::from))
        .collect::<Result<_, _>>()?;
    let block_elems = blocks[0][0].len();
    let block_bytes = precision.wire_bytes(block_elems);

    // Timing: all pairwise messages are issued at `start`; the network's
    // per-link occupancy serializes whatever shares links.
    let mut messages = Vec::with_capacity(n * (n - 1));
    for (i, &src) in chips.iter().enumerate() {
        for (j, &dst) in chips.iter().enumerate() {
            if i != j {
                messages.push((src, dst, block_bytes));
            }
        }
    }
    let time = if messages.is_empty() {
        start
    } else {
        net.parallel_transfers(&messages, start)?
    };
    if !messages.is_empty() {
        emit_span(
            net,
            SpanEvent::new(
                chip_track(net, chips[0]),
                SpanCategory::Collective,
                "all-to-all",
                start,
                time,
            )
            .with_bytes(messages.len() as u64 * block_bytes)
            .with_arg("members", n as f64),
        );
    }

    // Numerics: participant j receives block j from everyone.
    let outputs = (0..n)
        .map(|j| {
            let mine: Vec<Tensor> = (0..n).map(|i| precision.quantize(&blocks[i][j])).collect();
            Tensor::concat(&mine, 0).map_err(CollectiveError::from)
        })
        .collect::<Result<_, _>>()?;
    Ok(CollectiveOutput { outputs, time })
}

#[cfg(test)]
mod tests {
    use super::*;
    use multipod_simnet::NetworkConfig;
    use multipod_tensor::{Shape, TensorRng};
    use multipod_topology::{Multipod, MultipodConfig};

    fn setup(x: u32, y: u32) -> (Network, Vec<ChipId>) {
        let mesh = Multipod::new(MultipodConfig::mesh(x, y, true));
        let net = Network::new(mesh, NetworkConfig::tpu_v3());
        let chips = net.mesh().chips().collect();
        (net, chips)
    }

    #[test]
    fn transposes_blocks_across_participants() {
        let (mut net, chips) = setup(2, 2);
        // Participant i's tensor: 4 blocks of 2 elems, block j = 10*i + j.
        let inputs: Vec<Tensor> = (0..4)
            .map(|i| {
                let data: Vec<f32> = (0..4).flat_map(|j| vec![(10 * i + j) as f32; 2]).collect();
                Tensor::new(Shape::vector(8), data)
            })
            .collect();
        let out = all_to_all(&mut net, &chips, &inputs, Precision::F32, SimTime::ZERO).unwrap();
        // Participant j holds [block j of 0, block j of 1, ...].
        for j in 0..4 {
            let expect: Vec<f32> = (0..4).flat_map(|i| vec![(10 * i + j) as f32; 2]).collect();
            assert_eq!(out.outputs[j].data(), &expect[..], "participant {j}");
        }
        assert!(out.time > SimTime::ZERO);
    }

    #[test]
    fn all_to_all_is_its_own_inverse() {
        let (mut net, chips) = setup(4, 2);
        let n = chips.len();
        let mut rng = TensorRng::seed(3);
        let inputs: Vec<Tensor> = (0..n)
            .map(|_| rng.uniform(Shape::vector(n * 3), -1.0, 1.0))
            .collect();
        let once = all_to_all(&mut net, &chips, &inputs, Precision::F32, SimTime::ZERO).unwrap();
        net.reset();
        let twice = all_to_all(
            &mut net,
            &chips,
            &once.outputs,
            Precision::F32,
            SimTime::ZERO,
        )
        .unwrap();
        for (orig, back) in inputs.iter().zip(&twice.outputs) {
            assert_eq!(orig, back);
        }
    }

    #[test]
    fn bigger_meshes_pay_bisection_contention() {
        // Same per-chip payload; the wider mesh funnels more flows across
        // the middle links, so the *aggregate* exchange takes longer per
        // byte delivered.
        let per_chip = 1 << 14;
        let (mut small_net, small_chips) = setup(2, 2);
        let inputs: Vec<Tensor> = (0..4)
            .map(|_| Tensor::fill(Shape::vector(per_chip * 4), 1.0))
            .collect();
        let t_small = all_to_all(
            &mut small_net,
            &small_chips,
            &inputs,
            Precision::F32,
            SimTime::ZERO,
        )
        .unwrap()
        .time;
        let (mut big_net, big_chips) = setup(4, 4);
        let big_inputs: Vec<Tensor> = (0..16)
            .map(|_| Tensor::fill(Shape::vector(per_chip * 16), 1.0))
            .collect();
        let t_big = all_to_all(
            &mut big_net,
            &big_chips,
            &big_inputs,
            Precision::F32,
            SimTime::ZERO,
        )
        .unwrap()
        .time;
        assert!(t_big > t_small, "big={t_big} small={t_small}");
    }

    #[test]
    fn bf16_halves_exchange_bytes() {
        let (mut net_a, chips) = setup(2, 2);
        let inputs: Vec<Tensor> = (0..4)
            .map(|_| Tensor::fill(Shape::vector(4 * (1 << 14)), 1.0))
            .collect();
        let f32_t = all_to_all(&mut net_a, &chips, &inputs, Precision::F32, SimTime::ZERO)
            .unwrap()
            .time;
        let (mut net_b, chips_b) = setup(2, 2);
        let bf_t = all_to_all(
            &mut net_b,
            &chips_b,
            &inputs,
            Precision::Bf16,
            SimTime::ZERO,
        )
        .unwrap()
        .time;
        assert!(bf_t < f32_t);
    }

    #[test]
    fn validates_inputs() {
        let (mut net, chips) = setup(2, 1);
        let bad = vec![Tensor::zeros(Shape::vector(4))];
        assert!(matches!(
            all_to_all(&mut net, &chips, &bad, Precision::F32, SimTime::ZERO),
            Err(CollectiveError::ParticipantMismatch { .. })
        ));
        let odd = vec![
            Tensor::zeros(Shape::vector(3)),
            Tensor::zeros(Shape::vector(3)),
        ];
        assert!(matches!(
            all_to_all(&mut net, &chips, &odd, Precision::F32, SimTime::ZERO),
            Err(CollectiveError::Tensor(_)) | Err(CollectiveError::IndivisiblePayload { .. })
        ));
    }

    #[test]
    fn single_participant_is_identity() {
        let mesh = Multipod::new(MultipodConfig::mesh(2, 1, false));
        let mut net = Network::new(mesh, NetworkConfig::tpu_v3());
        let chips = vec![ChipId(0)];
        let inputs = vec![Tensor::from_slice(&[1.0, 2.0])];
        let out = all_to_all(&mut net, &chips, &inputs, Precision::F32, SimTime::ZERO).unwrap();
        assert_eq!(out.outputs[0], inputs[0]);
        assert_eq!(out.time, SimTime::ZERO);
    }
}
