//! α–β cost models for the collective schedules.
//!
//! At 4096-chip scale, materializing per-chip tensors is pointless — what
//! the executor needs is *time*. This module derives standard
//! latency–bandwidth ("α–β") costs for the exact schedules the numeric
//! layer executes, with all parameters taken from the simulated topology:
//!
//! * α (per-step latency) is computed by walking the ring and routing each
//!   member-to-member hop, so cross-pod optical links and peer-hopping
//!   strides are priced correctly;
//! * β (effective bandwidth) accounts for the link contention created when
//!   all `stride` offset rings of a model-parallel gradient reduction run
//!   concurrently over the same X links (§3.3);
//! * open chains (the X dimension has no wrap) pay a one-time wrap-path
//!   latency, since the logical ring's wrap edge must route back across
//!   the whole line on otherwise idle reverse-direction links.

use serde::{Deserialize, Serialize};

use multipod_simnet::Network;
use multipod_topology::Ring;

use crate::{CollectiveError, Precision};

/// Ring collective cost parameters extracted from a concrete ring on a
/// concrete topology.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RingCosts {
    /// Participants.
    pub n: usize,
    /// Per-step latency: per-message overhead plus the worst
    /// member-to-member path latency in the ring, seconds.
    pub alpha: f64,
    /// One-time latency penalty for the routed wrap edge of open chains,
    /// seconds (zero for true rings).
    pub wrap_penalty: f64,
    /// Effective per-direction bandwidth available to this ring,
    /// bytes/second (link bandwidth divided by overlapping-ring contention).
    pub beta: f64,
}

impl RingCosts {
    /// Derives costs for `ring` on the network's topology.
    ///
    /// `concurrent_offsets` is the number of same-stride rings sharing the
    /// physical links (e.g. `stride` for the model-peer gradient rings where
    /// every offset ring runs at once; 1 for plain data parallelism).
    ///
    /// # Errors
    ///
    /// Returns [`CollectiveError::ZeroContentionFactor`] when
    /// `concurrent_offsets == 0`, and [`CollectiveError::Network`] when a
    /// ring hop cannot be routed (e.g. a degraded mesh has cut the ring) —
    /// callers on a fault path can surface this as a degradation instead
    /// of crashing.
    pub fn from_ring(
        net: &Network,
        ring: &Ring,
        concurrent_offsets: u32,
    ) -> Result<RingCosts, CollectiveError> {
        if concurrent_offsets == 0 {
            return Err(CollectiveError::ZeroContentionFactor);
        }
        let cfg = net.config();
        let n = ring.len();
        if n < 2 {
            return Ok(RingCosts {
                n,
                alpha: 0.0,
                wrap_penalty: 0.0,
                beta: cfg.link_bandwidth,
            });
        }
        let mesh = net.mesh();
        let path_latency = |a, b| -> Result<f64, CollectiveError> {
            let route = mesh.route(a, b)?;
            Ok(route
                .link_classes(mesh)
                .iter()
                .map(|c| cfg.hop_latency * c.latency_multiplier())
                .sum())
        };
        let members = ring.members();
        let mut worst_step = 0.0f64;
        for w in members.windows(2) {
            worst_step = worst_step.max(path_latency(w[0], w[1])?);
        }
        let wrap_latency = path_latency(members[n - 1], members[0])?;
        let (alpha_path, wrap_penalty) = if ring.wraps() {
            (worst_step.max(wrap_latency), 0.0)
        } else {
            (worst_step, wrap_latency)
        };
        Ok(RingCosts {
            n,
            alpha: cfg.message_overhead + alpha_path,
            wrap_penalty,
            beta: cfg.link_bandwidth / concurrent_offsets as f64,
        })
    }

    /// Time for a reduce-scatter of `elems` elements at `precision`.
    ///
    /// `bidirectional` halves the per-direction payload (both directions of
    /// every link carry half the chunks).
    pub fn reduce_scatter_time(
        &self,
        elems: usize,
        precision: Precision,
        bidirectional: bool,
    ) -> f64 {
        self.phase_time(elems, precision, bidirectional)
    }

    /// Time for an all-gather of `elems` *total* elements (i.e. each member
    /// starts with `elems / n`).
    pub fn all_gather_time(&self, elems: usize, precision: Precision, bidirectional: bool) -> f64 {
        self.phase_time(elems, precision, bidirectional)
    }

    /// Time for a full all-reduce (reduce-scatter + all-gather).
    pub fn all_reduce_time(&self, elems: usize, precision: Precision, bidirectional: bool) -> f64 {
        2.0 * self.phase_time(elems, precision, bidirectional)
    }

    /// The latency-attributed (α) share of one phase: `(n−1)·α` plus the
    /// open-chain wrap penalty. Independent of payload size.
    pub fn phase_alpha_seconds(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        (self.n as f64 - 1.0) * self.alpha + self.wrap_penalty
    }

    /// The bandwidth-attributed (β) share of one phase: `(n−1)` chunk
    /// serializations at the ring's effective bandwidth.
    pub fn phase_beta_seconds(
        &self,
        elems: usize,
        precision: Precision,
        bidirectional: bool,
    ) -> f64 {
        if self.n < 2 || elems == 0 {
            return 0.0;
        }
        let chunk_elems = elems.div_ceil(self.n);
        let dir_divisor = if bidirectional { 2.0 } else { 1.0 };
        let chunk_bytes = precision.wire_bytes(chunk_elems) as f64 / dir_divisor;
        (self.n as f64 - 1.0) * chunk_bytes / self.beta
    }

    fn phase_time(&self, elems: usize, precision: Precision, bidirectional: bool) -> f64 {
        if self.n < 2 || elems == 0 {
            return 0.0;
        }
        self.phase_alpha_seconds() + self.phase_beta_seconds(elems, precision, bidirectional)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multipod_simnet::NetworkConfig;
    use multipod_topology::{Multipod, MultipodConfig};

    fn net(cfg: MultipodConfig) -> Network {
        Network::new(Multipod::new(cfg), NetworkConfig::tpu_v3())
    }

    #[test]
    fn closed_ring_has_no_wrap_penalty() {
        let n = net(MultipodConfig::mesh(1, 16, true));
        let ring = n.mesh().y_ring(0);
        let costs = RingCosts::from_ring(&n, &ring, 1).unwrap();
        assert_eq!(costs.wrap_penalty, 0.0);
        assert_eq!(costs.n, 16);
    }

    #[test]
    fn open_line_pays_wrap_once() {
        let n = net(MultipodConfig::mesh(16, 1, false));
        let ring = n.mesh().x_line(0);
        let costs = RingCosts::from_ring(&n, &ring, 1).unwrap();
        // Wrap path routes across 15 links.
        assert!((costs.wrap_penalty - 15.0 * 1e-6).abs() < 1e-12);
    }

    #[test]
    fn bidirectional_halves_bandwidth_term() {
        let n = net(MultipodConfig::mesh(1, 16, true));
        let ring = n.mesh().y_ring(0);
        let costs = RingCosts::from_ring(&n, &ring, 1).unwrap();
        let elems = 1 << 24; // bandwidth-dominated
        let uni = costs.all_reduce_time(elems, Precision::F32, false);
        let bi = costs.all_reduce_time(elems, Precision::F32, true);
        let ratio = bi / uni;
        assert!((0.5..0.55).contains(&ratio), "ratio={ratio}");
    }

    #[test]
    fn strided_rings_lose_bandwidth_to_contention() {
        let n = net(MultipodConfig::mesh(16, 1, false));
        let ring = n.mesh().x_line_strided(0, 0, 4);
        let costs = RingCosts::from_ring(&n, &ring, 4).unwrap();
        assert_eq!(costs.beta, NetworkConfig::tpu_v3().link_bandwidth / 4.0);
        // Per-step alpha covers the 4-hop peer distance.
        assert!(costs.alpha >= 1.5e-6 + 4.0e-6);
    }

    #[test]
    fn cross_pod_rings_pay_optical_latency() {
        let multi = net(MultipodConfig::multipod(2));
        let line = multi.mesh().x_line(0);
        let costs = RingCosts::from_ring(&multi, &line, 1).unwrap();
        // Worst step crosses the optical link: 4 µs + 1.5 µs overhead.
        assert!((costs.alpha - (1.5e-6 + 4.0e-6)).abs() < 1e-12);
    }

    #[test]
    fn bf16_halves_bandwidth_bytes() {
        let n = net(MultipodConfig::mesh(1, 32, true));
        let ring = n.mesh().y_ring(0);
        let costs = RingCosts::from_ring(&n, &ring, 1).unwrap();
        let elems = 25_600_000; // ResNet-50 parameter count
        let f = costs.all_reduce_time(elems, Precision::F32, true);
        let b = costs.all_reduce_time(elems, Precision::Bf16, true);
        // The bandwidth term halves; the per-step latency term does not,
        // so the ratio sits slightly above 0.5.
        assert!((0.48..0.62).contains(&(b / f)), "ratio={}", b / f);
    }

    #[test]
    fn trivial_rings_cost_nothing() {
        let n = net(MultipodConfig::mesh(2, 1, false));
        let ring = multipod_topology::Ring::new(vec![multipod_topology::ChipId(0)], false, 1);
        let costs = RingCosts::from_ring(&n, &ring, 1).unwrap();
        assert_eq!(costs.all_reduce_time(1000, Precision::F32, true), 0.0);
        let real = RingCosts::from_ring(&n, &n.mesh().x_line(0), 1).unwrap();
        assert_eq!(real.all_reduce_time(0, Precision::F32, false), 0.0);
    }

    #[test]
    fn zero_contention_factor_is_a_typed_error() {
        let n = net(MultipodConfig::mesh(1, 8, true));
        let ring = n.mesh().y_ring(0);
        assert!(matches!(
            RingCosts::from_ring(&n, &ring, 0),
            Err(CollectiveError::ZeroContentionFactor)
        ));
    }

    #[test]
    fn broken_ring_is_a_typed_error_not_a_panic() {
        // Non-torus 1-wide column: failing one Y link partitions the
        // chain, so a ring hop becomes unroutable. The cost model must
        // report that as a network error a degraded-mesh caller can turn
        // into a Degradation, never a crash.
        let mut n = net(MultipodConfig::mesh(1, 4, false));
        let ring = n.mesh().y_ring(0);
        let a = ring.members()[1];
        let b = ring.members()[2];
        n.fail_link(a, b, multipod_simnet::SimTime::ZERO);
        assert!(matches!(
            RingCosts::from_ring(&n, &ring, 1),
            Err(CollectiveError::Network(_))
        ));
    }

    #[test]
    fn paper_scale_y_then_x_payload_ratio() {
        // §3.3: "the payload transferred along the X-dimension is 32 times
        // less than the data transferred along the Y-dimension." The X
        // phase therefore is latency-bound: scaling the payload up 64x
        // grows the Y time almost linearly but barely moves the X time.
        let m = net(MultipodConfig::multipod(4));
        let y = RingCosts::from_ring(&m, &m.mesh().y_ring(0), 1).unwrap();
        let x = RingCosts::from_ring(&m, &m.mesh().x_line(0), 1).unwrap();
        let small = 1 << 20;
        let large = small * 64;
        let y_growth = y.reduce_scatter_time(large, Precision::F32, true)
            / y.reduce_scatter_time(small, Precision::F32, true);
        let x_growth = x.reduce_scatter_time(large / 32, Precision::F32, true)
            / x.reduce_scatter_time(small / 32, Precision::F32, true);
        assert!(y_growth > 10.0, "y_growth={y_growth}");
        assert!(x_growth < 5.0, "x_growth={x_growth}");
        // And the X phase never dominates by more than its step-count
        // excess (128 line steps vs 32 ring steps).
        let t_y = y.reduce_scatter_time(large, Precision::F32, true);
        let t_x = x.reduce_scatter_time(large / 32, Precision::F32, true);
        assert!(t_x < t_y, "t_x={t_x} t_y={t_y}");
    }
}
