//! Numeric ring collectives.
//!
//! These functions execute ring collectives **for real**: tensor chunks move
//! between ring members step by step, reductions happen elementwise, and
//! every message is timed on the simulated network (so link contention —
//! e.g. a peer-hopping ring crossing occupied links — shows up in the
//! returned time). They are the ground truth for the α–β models in
//! [`crate::timing`] and for every property test.

use std::sync::OnceLock;

use serde::{Deserialize, Serialize};

use multipod_simnet::{Network, SimTime};
use multipod_tensor::{Shape, Tensor};
use multipod_topology::{ChipId, Ring};
use multipod_trace::{SpanCategory, SpanEvent};

use crate::{chip_track, emit_span, ChunkMove, CollectiveError, Precision, Schedule};

/// Emits a collective span on the ring's first member, skipping trivial
/// (sub-2-member) rings that do no communication.
fn emit_ring_span(
    net: &Network,
    ring: &Ring,
    category: SpanCategory,
    name: &str,
    start: SimTime,
    end: SimTime,
    bytes: u64,
) {
    if ring.len() < 2 || net.trace_sink().is_none() {
        return;
    }
    let track = chip_track(net, ring.members()[0]);
    emit_span(
        net,
        SpanEvent::new(track, category, name, start, end)
            .with_bytes(bytes)
            .with_arg("members", ring.len() as f64),
    );
}

/// Travel direction around a ring.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Increasing member index.
    Forward,
    /// Decreasing member index.
    Backward,
}

/// Result of a collective that leaves every member with a full payload.
#[derive(Clone, Debug, PartialEq)]
pub struct CollectiveOutput {
    /// Per-member output, in ring order.
    pub outputs: Vec<Tensor>,
    /// Completion time of the slowest member.
    pub time: SimTime,
}

/// Result of a reduce-scatter: every member holds one reduced shard.
#[derive(Clone, Debug, PartialEq)]
pub struct ScatterOutput {
    /// Per-member shard, in ring order (member `i` holds the chunk
    /// [`Schedule::owned_chunk`]`(i)` of the flattened payload).
    pub shards: Vec<Tensor>,
    /// Index of the payload chunk each member holds.
    pub chunk_of_member: Vec<usize>,
    /// Completion time of the slowest member.
    pub time: SimTime,
}

fn validate(inputs: &[Tensor], ring: &Ring) -> Result<(), CollectiveError> {
    if inputs.len() != ring.len() {
        return Err(CollectiveError::ParticipantMismatch {
            inputs: inputs.len(),
            members: ring.len(),
        });
    }
    if inputs.iter().any(|t| t.shape() != inputs[0].shape()) {
        return Err(CollectiveError::ShapeDisagreement);
    }
    Ok(())
}

/// `true` once per process when `MULTIPOD_PARALLEL` is set to anything but
/// `0`: payload snapshots are then quantized on scoped threads instead of
/// in a serial loop.
fn parallel_payloads_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| std::env::var("MULTIPOD_PARALLEL").is_ok_and(|v| v != "0"))
}

/// Quantizes every move's source chunk for one schedule step.
///
/// The moves within a step travel independent links and read distinct
/// source chunks, so with `parallel` each snapshot runs on its own
/// crossbeam scoped thread. Quantization is purely elementwise (including
/// the chunked bf16 demotion kernel), so the parallel path is bit-identical
/// to the serial one — only wall-clock changes.
fn quantize_step(
    step: &[ChunkMove],
    chunks: &[Vec<Tensor>],
    precision: Precision,
    parallel: bool,
) -> Vec<Tensor> {
    if !parallel || step.len() < 2 {
        return step
            .iter()
            .map(|mv| precision.quantize(&chunks[mv.from][mv.chunk]))
            .collect();
    }
    let mut out: Vec<Option<Tensor>> = vec![None; step.len()];
    // The vendored crossbeam stand-in never yields `Err` (a panicking
    // child re-panics on join), so this expect is unreachable.
    crossbeam::scope(|s| {
        for (slot, mv) in out.iter_mut().zip(step) {
            s.spawn(move |_| *slot = Some(precision.quantize(&chunks[mv.from][mv.chunk])));
        }
    })
    .expect("scoped payload quantization joins");
    out.into_iter().flatten().collect()
}

fn run_schedule(
    net: &mut Network,
    ring: &Ring,
    schedule: &Schedule,
    chunks: &mut [Vec<Tensor>],
    precision: Precision,
    start: SimTime,
) -> Result<SimTime, CollectiveError> {
    run_schedule_with(
        net,
        ring,
        schedule,
        chunks,
        precision,
        start,
        parallel_payloads_enabled(),
    )
}

fn run_schedule_with(
    net: &mut Network,
    ring: &Ring,
    schedule: &Schedule,
    chunks: &mut [Vec<Tensor>],
    precision: Precision,
    start: SimTime,
    parallel: bool,
) -> Result<SimTime, CollectiveError> {
    let members = ring.members();
    let mut t = start;
    for step in schedule.steps() {
        // Numerics first, on a snapshot, so concurrent moves are coherent.
        let payloads = quantize_step(step, chunks, precision, parallel);
        for (mv, payload) in step.iter().zip(&payloads) {
            apply_move(chunks, mv, payload)?;
        }
        // Then timing: all moves in a step are concurrent.
        let msgs: Vec<(ChipId, ChipId, u64)> = step
            .iter()
            .map(|mv| {
                (
                    members[mv.from],
                    members[mv.to],
                    precision.wire_bytes(chunks[mv.from][mv.chunk].len()),
                )
            })
            .collect();
        t = net.parallel_transfers(&msgs, t)?;
    }
    Ok(t)
}

fn apply_move(
    chunks: &mut [Vec<Tensor>],
    mv: &ChunkMove,
    payload: &Tensor,
) -> Result<(), CollectiveError> {
    if mv.reduce {
        // In-place accumulate; the destination chunk is uniquely owned
        // (flatten_chunks materialized it), so no copy-on-write detach.
        chunks[mv.to][mv.chunk].axpy(1.0, payload)?;
    } else {
        // Move by handle: an O(1) refcount bump, not a payload copy.
        chunks[mv.to][mv.chunk] = payload.clone();
    }
    Ok(())
}

fn flatten_chunks(inputs: &[Tensor], n: usize) -> Result<Vec<Vec<Tensor>>, CollectiveError> {
    let elems = inputs[0].len();
    if n == 0 || !elems.is_multiple_of(n) {
        return Err(CollectiveError::IndivisiblePayload { elems, parts: n });
    }
    inputs
        .iter()
        .map(|t| {
            let flat = t.clone().reshape(Shape::vector(t.len()))?;
            flat.split(0, n).map_err(CollectiveError::from)
        })
        .collect()
}

/// Ring reduce-scatter: after the call, member `i` holds the elementwise
/// sum of chunk [`ScatterOutput::chunk_of_member`]`[i]` across all members.
///
/// # Errors
///
/// Fails on participant/shape mismatches, payloads not divisible by the
/// ring size, or unroutable messages.
pub fn reduce_scatter(
    net: &mut Network,
    ring: &Ring,
    inputs: &[Tensor],
    precision: Precision,
    direction: Direction,
    start: SimTime,
) -> Result<ScatterOutput, CollectiveError> {
    validate(inputs, ring)?;
    let n = ring.len();
    let mut chunks = flatten_chunks(inputs, n)?;
    let schedule = Schedule::reduce_scatter(n, direction);
    let time = run_schedule(net, ring, &schedule, &mut chunks, precision, start)?;
    emit_ring_span(
        net,
        ring,
        SpanCategory::CollectivePhase,
        "reduce-scatter",
        start,
        time,
        precision.wire_bytes(inputs[0].len()),
    );
    let chunk_of_member: Vec<usize> = (0..n).map(|i| schedule.owned_chunk(i)).collect();
    // Take the owned shard out of each member's chunk row by handle; the
    // remaining (stale) chunks are dropped without copying.
    let shards = chunks
        .into_iter()
        .zip(&chunk_of_member)
        .map(|(mut row, &owned)| row.swap_remove(owned))
        .collect();
    Ok(ScatterOutput {
        shards,
        chunk_of_member,
        time,
    })
}

/// Ring all-gather: member `i` contributes `shards[i]` as payload chunk
/// [`Schedule::owned_chunk`]`(i)`; every member ends with the concatenation
/// of all chunks in payload order.
///
/// # Errors
///
/// Fails on participant/shape mismatches or unroutable messages.
pub fn all_gather(
    net: &mut Network,
    ring: &Ring,
    shards: &[Tensor],
    precision: Precision,
    direction: Direction,
    start: SimTime,
) -> Result<CollectiveOutput, CollectiveError> {
    validate(shards, ring)?;
    let n = ring.len();
    let schedule = Schedule::all_gather(n, direction);
    let chunk_elems = shards[0].len();
    // Pre-place each member's shard at its owned chunk slot. Flattening a
    // shard to its own element count cannot change the count, but any
    // tensor failure surfaces as a typed error rather than a panic.
    let mut chunks: Vec<Vec<Tensor>> = Vec::with_capacity(n);
    for (i, shard) in shards.iter().enumerate() {
        let mut row = vec![Tensor::zeros(Shape::vector(chunk_elems)); n];
        row[schedule.owned_chunk(i)] = shard.clone().reshape(Shape::vector(chunk_elems))?;
        chunks.push(row);
    }
    let time = run_schedule(net, ring, &schedule, &mut chunks, precision, start)?;
    emit_ring_span(
        net,
        ring,
        SpanCategory::CollectivePhase,
        "all-gather",
        start,
        time,
        precision.wire_bytes(n * chunk_elems),
    );
    let outputs = chunks
        .into_iter()
        .map(|row| Tensor::concat(&row, 0).map_err(CollectiveError::from))
        .collect::<Result<Vec<Tensor>, CollectiveError>>()?;
    Ok(CollectiveOutput { outputs, time })
}

/// Ring all-gather where member `i` contributes the `i`-th chunk of the
/// payload (index order), as SPMD resharding requires — unlike
/// [`all_gather`], whose chunk placement follows the reduce-scatter
/// ownership convention.
///
/// # Errors
///
/// See [`all_gather`].
pub fn all_gather_ordered(
    net: &mut Network,
    ring: &Ring,
    shards: &[Tensor],
    precision: Precision,
    direction: Direction,
    start: SimTime,
) -> Result<CollectiveOutput, CollectiveError> {
    let n = ring.len();
    let raw = all_gather(net, ring, shards, precision, direction, start)?;
    if n < 2 {
        return Ok(raw);
    }
    // `all_gather` places member i's shard at schedule-chunk
    // owned_chunk(i); permute chunks back to member-index order.
    let schedule = Schedule::all_gather(n, direction);
    let mut outputs = Vec::with_capacity(raw.outputs.len());
    for t in raw.outputs {
        let chunks = t.split(0, n)?;
        let ordered: Vec<Tensor> = (0..n)
            .map(|m| chunks[schedule.owned_chunk(m)].clone())
            .collect();
        outputs.push(Tensor::concat(&ordered, 0)?);
    }
    Ok(CollectiveOutput {
        outputs,
        time: raw.time,
    })
}

/// Unidirectional ring all-reduce: reduce-scatter followed by all-gather.
///
/// Outputs keep the input shape.
///
/// # Errors
///
/// See [`reduce_scatter`].
pub fn all_reduce_unidirectional(
    net: &mut Network,
    ring: &Ring,
    inputs: &[Tensor],
    precision: Precision,
    direction: Direction,
    start: SimTime,
) -> Result<CollectiveOutput, CollectiveError> {
    let rs = reduce_scatter(net, ring, inputs, precision, direction, start)?;
    let ag = all_gather(net, ring, &rs.shards, precision, direction, rs.time)?;
    let shape = inputs[0].shape().clone();
    let outputs = ag
        .outputs
        .into_iter()
        .map(|t| t.reshape(shape.clone()).map_err(CollectiveError::from))
        .collect::<Result<Vec<Tensor>, CollectiveError>>()?;
    Ok(CollectiveOutput {
        outputs,
        time: ag.time,
    })
}

/// Bidirectional ring all-reduce: the payload is split in half and the two
/// halves travel the ring in opposite directions simultaneously, using both
/// directions of every physical link (§3.3: "A bidirectional ring is used
/// to execute a reduce-scatter operation along the Y-dimension").
///
/// Falls back to the unidirectional algorithm when the payload cannot be
/// split into `2n` chunks.
///
/// # Errors
///
/// See [`reduce_scatter`].
pub fn all_reduce(
    net: &mut Network,
    ring: &Ring,
    inputs: &[Tensor],
    precision: Precision,
    start: SimTime,
) -> Result<CollectiveOutput, CollectiveError> {
    validate(inputs, ring)?;
    let n = ring.len();
    let elems = inputs[0].len();
    if n < 2 || !elems.is_multiple_of(2 * n) {
        let out =
            all_reduce_unidirectional(net, ring, inputs, precision, Direction::Forward, start)?;
        emit_ring_span(
            net,
            ring,
            SpanCategory::Collective,
            "all-reduce",
            start,
            out.time,
            precision.wire_bytes(elems),
        );
        return Ok(out);
    }
    let shape = inputs[0].shape().clone();
    // `validate` + the divisibility gate above make these tensor ops
    // well-formed; errors still propagate typed instead of panicking.
    // Each half moves into its lane by handle — no intermediate clones.
    let mut first: Vec<Tensor> = Vec::with_capacity(inputs.len());
    let mut second: Vec<Tensor> = Vec::with_capacity(inputs.len());
    for t in inputs {
        let flat = t.clone().reshape(Shape::vector(elems))?;
        let mut parts = flat.split(0, 2)?.into_iter();
        let (Some(a), Some(b)) = (parts.next(), parts.next()) else {
            return Err(CollectiveError::IndivisiblePayload { elems, parts: 2 });
        };
        first.push(a);
        second.push(b);
    }
    let lane_a =
        all_reduce_unidirectional(net, ring, &first, precision, Direction::Forward, start)?;
    let lane_b =
        all_reduce_unidirectional(net, ring, &second, precision, Direction::Backward, start)?;
    let time = lane_a.time.max(lane_b.time);
    let mut outputs = Vec::with_capacity(lane_a.outputs.len());
    for (a, b) in lane_a.outputs.into_iter().zip(lane_b.outputs) {
        outputs.push(Tensor::concat(&[a, b], 0)?.reshape(shape.clone())?);
    }
    emit_ring_span(
        net,
        ring,
        SpanCategory::Collective,
        "all-reduce",
        start,
        time,
        precision.wire_bytes(elems),
    );
    Ok(CollectiveOutput { outputs, time })
}

/// Relays a tensor from `root` around the ring (non-pipelined; the
/// optimized weight distribution path in the paper is reduce-scatter +
/// all-gather, not this).
///
/// # Errors
///
/// Fails when `root` is out of range or a hop is unroutable.
pub fn broadcast(
    net: &mut Network,
    ring: &Ring,
    root: usize,
    payload: &Tensor,
    precision: Precision,
    start: SimTime,
) -> Result<CollectiveOutput, CollectiveError> {
    if root >= ring.len() {
        return Err(CollectiveError::ParticipantMismatch {
            inputs: root,
            members: ring.len(),
        });
    }
    let members = ring.members();
    let n = ring.len();
    let bytes = precision.wire_bytes(payload.len());
    let mut t = start;
    // Send both ways from the root so the farthest member is ~n/2 hops away.
    let mut fwd_t = t;
    let mut bwd_t = t;
    for d in 1..n {
        if d <= n / 2 {
            let from = members[(root + d - 1) % n];
            let to = members[(root + d) % n];
            fwd_t = net.transfer(from, to, bytes, fwd_t)?.finish;
        }
        if d < n - n / 2 {
            let from = members[(root + n - (d - 1)) % n];
            let to = members[(root + n - d) % n];
            bwd_t = net.transfer(from, to, bytes, bwd_t)?.finish;
        }
        t = fwd_t.max(bwd_t);
    }
    emit_ring_span(
        net,
        ring,
        SpanCategory::Collective,
        "broadcast",
        start,
        t,
        bytes,
    );
    let quantized = precision.quantize(payload);
    Ok(CollectiveOutput {
        outputs: vec![quantized; n],
        time: t,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use multipod_simnet::NetworkConfig;
    use multipod_topology::{Multipod, MultipodConfig};

    fn column_net(y: u32) -> (Network, Ring) {
        let mesh = Multipod::new(MultipodConfig::mesh(1, y, true));
        let net = Network::new(mesh, NetworkConfig::tpu_v3());
        let ring = net.mesh().y_ring(0);
        (net, ring)
    }

    fn inputs(n: usize, elems: usize) -> Vec<Tensor> {
        (0..n)
            .map(|i| {
                Tensor::new(
                    Shape::vector(elems),
                    (0..elems).map(|e| (i * elems + e) as f32).collect(),
                )
            })
            .collect()
    }

    #[test]
    fn reduce_scatter_matches_reference_sum() {
        let (mut net, ring) = column_net(4);
        let ins = inputs(4, 8);
        let reference = Tensor::sum_all(&ins).unwrap();
        let out = reduce_scatter(
            &mut net,
            &ring,
            &ins,
            Precision::F32,
            Direction::Forward,
            SimTime::ZERO,
        )
        .unwrap();
        let ref_chunks = reference.split(0, 4).unwrap();
        for (i, shard) in out.shards.iter().enumerate() {
            assert_eq!(shard, &ref_chunks[out.chunk_of_member[i]], "member {i}");
        }
        assert!(out.time > SimTime::ZERO);
    }

    #[test]
    fn all_gather_restores_full_payload() {
        let (mut net, ring) = column_net(4);
        let ins = inputs(4, 8);
        let rs = reduce_scatter(
            &mut net,
            &ring,
            &ins,
            Precision::F32,
            Direction::Forward,
            SimTime::ZERO,
        )
        .unwrap();
        let ag = all_gather(
            &mut net,
            &ring,
            &rs.shards,
            Precision::F32,
            Direction::Forward,
            rs.time,
        )
        .unwrap();
        let reference = Tensor::sum_all(&ins).unwrap();
        for out in &ag.outputs {
            assert_eq!(out, &reference);
        }
    }

    #[test]
    fn all_reduce_bidirectional_equals_sum() {
        let (mut net, ring) = column_net(8);
        let ins = inputs(8, 32);
        let reference = Tensor::sum_all(&ins).unwrap();
        let out = all_reduce(&mut net, &ring, &ins, Precision::F32, SimTime::ZERO).unwrap();
        for o in &out.outputs {
            assert_eq!(o, &reference);
        }
    }

    #[test]
    fn bidirectional_is_faster_than_unidirectional() {
        let elems = 1 << 20;
        let (mut net, ring) = column_net(8);
        let ins = inputs(8, elems);
        let bi = all_reduce(&mut net, &ring, &ins, Precision::F32, SimTime::ZERO).unwrap();
        let (mut net2, ring2) = column_net(8);
        let uni = all_reduce_unidirectional(
            &mut net2,
            &ring2,
            &ins,
            Precision::F32,
            Direction::Forward,
            SimTime::ZERO,
        )
        .unwrap();
        assert!(
            bi.time.seconds() < 0.7 * uni.time.seconds(),
            "bi={} uni={}",
            bi.time,
            uni.time
        );
    }

    #[test]
    fn bf16_payload_quantizes_but_stays_close() {
        let (mut net, ring) = column_net(4);
        let ins: Vec<Tensor> = (0..4)
            .map(|i| Tensor::fill(Shape::vector(16), 1.0 + i as f32 * 0.001))
            .collect();
        let reference = Tensor::sum_all(&ins).unwrap();
        let out = all_reduce(&mut net, &ring, &ins, Precision::Bf16, SimTime::ZERO).unwrap();
        let diff = out.outputs[0].max_abs_diff(&reference);
        assert!(diff > 0.0, "bf16 should be lossy here");
        assert!(diff < 0.05, "but close: {diff}");
    }

    #[test]
    fn bf16_halves_wire_time() {
        let elems = 1 << 22;
        let (mut net, ring) = column_net(4);
        let ins = inputs(4, elems);
        let f32_out = all_reduce_unidirectional(
            &mut net,
            &ring,
            &ins,
            Precision::F32,
            Direction::Forward,
            SimTime::ZERO,
        )
        .unwrap();
        let (mut net2, ring2) = column_net(4);
        let bf_out = all_reduce_unidirectional(
            &mut net2,
            &ring2,
            &ins,
            Precision::Bf16,
            Direction::Forward,
            SimTime::ZERO,
        )
        .unwrap();
        let ratio = bf_out.time.seconds() / f32_out.time.seconds();
        assert!((0.45..0.62).contains(&ratio), "ratio={ratio}");
    }

    #[test]
    fn open_line_all_reduce_still_correct() {
        let mesh = Multipod::new(MultipodConfig::mesh(6, 1, false));
        let mut net = Network::new(mesh, NetworkConfig::tpu_v3());
        let ring = net.mesh().x_line(0);
        let ins = inputs(6, 12);
        let reference = Tensor::sum_all(&ins).unwrap();
        let out = all_reduce(&mut net, &ring, &ins, Precision::F32, SimTime::ZERO).unwrap();
        for o in &out.outputs {
            assert_eq!(o, &reference);
        }
    }

    #[test]
    fn strided_peer_ring_all_reduce_correct() {
        // 8-chip row with 4-wide model tiles: peers at x = 1, 5.
        let mesh = Multipod::new(MultipodConfig::mesh(8, 1, false));
        let mut net = Network::new(mesh, NetworkConfig::tpu_v3());
        let ring = net.mesh().x_line_strided(0, 1, 4);
        assert_eq!(ring.len(), 2);
        let ins = inputs(2, 8);
        let reference = Tensor::sum_all(&ins).unwrap();
        let out = all_reduce(&mut net, &ring, &ins, Precision::F32, SimTime::ZERO).unwrap();
        for o in &out.outputs {
            assert_eq!(o, &reference);
        }
    }

    #[test]
    fn errors_are_reported() {
        let (mut net, ring) = column_net(4);
        // Wrong participant count.
        let bad = inputs(3, 8);
        assert!(matches!(
            all_reduce(&mut net, &ring, &bad, Precision::F32, SimTime::ZERO),
            Err(CollectiveError::ParticipantMismatch { .. })
        ));
        // Indivisible payload (7 elements over 4 members, and 7 % 8 != 0
        // so the bidirectional path also rejects).
        let bad = inputs(4, 7);
        assert!(matches!(
            all_reduce(&mut net, &ring, &bad, Precision::F32, SimTime::ZERO),
            Err(CollectiveError::IndivisiblePayload { .. })
        ));
        // Disagreeing shapes.
        let mut bad = inputs(4, 8);
        bad[2] = Tensor::zeros(Shape::vector(16));
        assert!(matches!(
            all_reduce(&mut net, &ring, &bad, Precision::F32, SimTime::ZERO),
            Err(CollectiveError::ShapeDisagreement)
        ));
    }

    #[test]
    fn all_gather_ordered_concatenates_in_index_order() {
        let (mut net, ring) = column_net(4);
        let shards: Vec<Tensor> = (0..4)
            .map(|i| Tensor::fill(Shape::vector(2), i as f32))
            .collect();
        for dir in [Direction::Forward, Direction::Backward] {
            let out =
                all_gather_ordered(&mut net, &ring, &shards, Precision::F32, dir, SimTime::ZERO)
                    .unwrap();
            for o in &out.outputs {
                assert_eq!(o.data(), &[0.0, 0.0, 1.0, 1.0, 2.0, 2.0, 3.0, 3.0]);
            }
        }
    }

    #[test]
    fn broadcast_reaches_everyone() {
        let (mut net, ring) = column_net(8);
        let payload = Tensor::from_slice(&[1.0, 2.0, 3.0, 4.0]);
        let out = broadcast(&mut net, &ring, 3, &payload, Precision::F32, SimTime::ZERO).unwrap();
        assert_eq!(out.outputs.len(), 8);
        for o in &out.outputs {
            assert_eq!(o, &payload);
        }
        assert!(out.time > SimTime::ZERO);
    }

    #[test]
    fn parallel_payload_path_is_bit_identical_to_serial() {
        // Same schedule, same inputs, bf16 payloads (exercising the chunked
        // demotion kernel on scoped threads): the crossbeam path must
        // reproduce the serial path bit for bit, in data and in sim time.
        let n = 8;
        let (mut net_s, ring_s) = column_net(n as u32);
        let (mut net_p, ring_p) = column_net(n as u32);
        let ins = inputs(n, 1 << 10);
        let schedule = Schedule::reduce_scatter(n, Direction::Forward);
        let mut serial = flatten_chunks(&ins, n).unwrap();
        let mut parallel = flatten_chunks(&ins, n).unwrap();
        let t_s = run_schedule_with(
            &mut net_s,
            &ring_s,
            &schedule,
            &mut serial,
            Precision::Bf16,
            SimTime::ZERO,
            false,
        )
        .unwrap();
        let t_p = run_schedule_with(
            &mut net_p,
            &ring_p,
            &schedule,
            &mut parallel,
            Precision::Bf16,
            SimTime::ZERO,
            true,
        )
        .unwrap();
        assert_eq!(t_s.seconds().to_bits(), t_p.seconds().to_bits());
        for (row_s, row_p) in serial.iter().zip(&parallel) {
            for (c_s, c_p) in row_s.iter().zip(row_p) {
                assert_eq!(
                    c_s.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    c_p.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>()
                );
            }
        }
    }

    #[test]
    fn single_member_ring_is_identity() {
        let (mut net, _) = column_net(4);
        let ring = Ring::new(vec![ChipId(0)], false, 1);
        let ins = inputs(1, 8);
        let out = all_reduce(&mut net, &ring, &ins, Precision::F32, SimTime::ZERO).unwrap();
        assert_eq!(out.outputs[0], ins[0]);
        assert_eq!(out.time, SimTime::ZERO);
    }
}
