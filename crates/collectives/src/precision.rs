//! Payload precision for collective transfers.

use serde::{Deserialize, Serialize};

use multipod_tensor::Tensor;

/// Element width of a collective payload.
///
/// The paper halves gradient-summation bytes by demoting payloads to
/// bfloat16 (§3.3: "we also used the brain-float 16-bit floating point
/// precision to further reduce gradient summation overheads").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Precision {
    /// 4-byte IEEE-754 single precision.
    F32,
    /// 2-byte brain float; payloads are quantized at every hop.
    Bf16,
}

impl Precision {
    /// Bytes per element on the wire.
    pub fn bytes(self) -> u64 {
        match self {
            Precision::F32 => 4,
            Precision::Bf16 => 2,
        }
    }

    /// Applies the wire precision to a tensor (identity for `F32`).
    pub fn quantize(self, tensor: &Tensor) -> Tensor {
        match self {
            Precision::F32 => tensor.clone(),
            Precision::Bf16 => tensor.to_bf16_precision(),
        }
    }

    /// Wire size of `elems` elements.
    pub fn wire_bytes(self, elems: usize) -> u64 {
        elems as u64 * self.bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multipod_tensor::{Shape, Tensor};

    #[test]
    fn byte_widths() {
        assert_eq!(Precision::F32.bytes(), 4);
        assert_eq!(Precision::Bf16.bytes(), 2);
        assert_eq!(Precision::Bf16.wire_bytes(100), 200);
    }

    #[test]
    fn f32_quantize_is_identity() {
        let t = Tensor::fill(Shape::of(&[4]), 1.0 + 1.0 / 512.0);
        assert_eq!(Precision::F32.quantize(&t), t);
    }

    #[test]
    fn bf16_quantize_rounds() {
        let t = Tensor::fill(Shape::of(&[4]), 1.0 + 1.0 / 512.0);
        let q = Precision::Bf16.quantize(&t);
        assert!(q.data().iter().all(|&v| v == 1.0));
    }
}
