//! Halo exchange for spatial partitioning (§3.1).
//!
//! When the SPMD partitioner splits a convolution's inputs along a spatial
//! dimension, each core needs `halo` boundary rows from its spatial
//! neighbours to compute its output tile: "The SPMD partitioner inserts
//! halo exchange communication operations to compute the activations for
//! the next step from spatially partitioned computations."
//!
//! [`halo_exchange`] moves the real boundary slices between neighbouring
//! chips (timed on the network) and pads the global edges with zeros, so a
//! *valid* convolution over each padded tile reproduces a *same*-padded
//! convolution over the unpartitioned input.

use multipod_simnet::{Network, SimTime};
use multipod_tensor::Tensor;
use multipod_topology::ChipId;

use multipod_trace::{SpanCategory, SpanEvent};

use crate::ring::CollectiveOutput;
use crate::{chip_track, emit_span, CollectiveError, Precision};

/// Exchanges `halo` boundary slices along `axis` between consecutive
/// parts placed on `chips`, returning each part padded with its
/// neighbours' boundaries (zeros at the global edges).
///
/// # Errors
///
/// Fails when part/chip counts mismatch, shapes disagree, a part is
/// shorter than `halo` along `axis`, or a transfer is unroutable.
pub fn halo_exchange(
    net: &mut Network,
    chips: &[ChipId],
    parts: &[Tensor],
    axis: usize,
    halo: usize,
    precision: Precision,
    start: SimTime,
) -> Result<CollectiveOutput, CollectiveError> {
    if chips.len() != parts.len() || parts.is_empty() {
        return Err(CollectiveError::ParticipantMismatch {
            inputs: parts.len(),
            members: chips.len(),
        });
    }
    if parts.iter().any(|p| p.shape() != parts[0].shape()) {
        return Err(CollectiveError::ShapeDisagreement);
    }
    let shape = parts[0].shape();
    if axis >= shape.rank() {
        return Err(CollectiveError::Tensor(
            multipod_tensor::TensorError::AxisOutOfRange {
                axis,
                rank: shape.rank(),
            },
        ));
    }
    let extent = shape.dim(axis);
    if halo > extent {
        return Err(CollectiveError::IndivisiblePayload {
            elems: extent,
            parts: halo,
        });
    }
    let n = parts.len();
    let zeros_halo = Tensor::zeros(shape.with_dim(axis, halo));
    let head = |t: &Tensor| -> Tensor { slice_axis(t, axis, 0, halo) };
    let tail = |t: &Tensor| -> Tensor { slice_axis(t, axis, extent - halo, halo) };

    let mut outputs = Vec::with_capacity(n);
    let mut finish = start;
    let halo_bytes = precision.wire_bytes(zeros_halo.len());
    for i in 0..n {
        let top = if i > 0 {
            // Part i-1's last rows travel to chip i. A zero-width halo
            // puts nothing on the wire, so it costs nothing to exchange.
            if halo_bytes > 0 {
                finish = finish.max(
                    net.transfer(chips[i - 1], chips[i], halo_bytes, start)?
                        .finish,
                );
            }
            precision.quantize(&tail(&parts[i - 1]))
        } else {
            zeros_halo.clone()
        };
        let bottom = if i + 1 < n {
            if halo_bytes > 0 {
                finish = finish.max(
                    net.transfer(chips[i + 1], chips[i], halo_bytes, start)?
                        .finish,
                );
            }
            precision.quantize(&head(&parts[i + 1]))
        } else {
            zeros_halo.clone()
        };
        let padded = Tensor::concat(&[top, parts[i].clone(), bottom], axis)?;
        outputs.push(padded);
    }
    if n > 1 && halo > 0 {
        emit_span(
            net,
            SpanEvent::new(
                chip_track(net, chips[0]),
                SpanCategory::Collective,
                "halo-exchange",
                start,
                finish,
            )
            .with_bytes(2 * (n as u64 - 1) * halo_bytes)
            .with_arg("members", n as f64),
        );
    }
    Ok(CollectiveOutput {
        outputs,
        time: finish,
    })
}

/// Extracts `len` slices starting at `offset` along `axis` (a strided copy).
fn slice_axis(t: &Tensor, axis: usize, offset: usize, len: usize) -> Tensor {
    let shape = t.shape();
    let extent = shape.dim(axis);
    // True invariant: `halo_exchange` rejects `halo > extent` up front and
    // only calls this with `offset + len <= extent`; a violation is a bug
    // in this module, not a caller-input condition.
    debug_assert!(offset + len <= extent, "slice out of range");
    let outer: usize = shape.dims()[..axis].iter().product();
    let inner: usize = shape.dims()[axis + 1..].iter().product();
    let mut data = Vec::with_capacity(outer * len * inner);
    for o in 0..outer {
        let base = (o * extent + offset) * inner;
        data.extend_from_slice(&t.data()[base..base + len * inner]);
    }
    Tensor::new(shape.with_dim(axis, len), data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use multipod_simnet::NetworkConfig;
    use multipod_tensor::{Shape, TensorRng};
    use multipod_topology::{Multipod, MultipodConfig};

    fn setup(x: u32) -> Network {
        Network::new(
            Multipod::new(MultipodConfig::mesh(x, 1, false)),
            NetworkConfig::tpu_v3(),
        )
    }

    /// Reference 1-D "same" convolution with kernel of odd length.
    fn conv1d_same(input: &[f32], kernel: &[f32]) -> Vec<f32> {
        let h = kernel.len() / 2;
        (0..input.len())
            .map(|i| {
                kernel
                    .iter()
                    .enumerate()
                    .map(|(k, &w)| {
                        let j = i as isize + k as isize - h as isize;
                        if j < 0 || j as usize >= input.len() {
                            0.0
                        } else {
                            w * input[j as usize]
                        }
                    })
                    .sum()
            })
            .collect()
    }

    /// Valid 1-D convolution (no padding).
    fn conv1d_valid(input: &[f32], kernel: &[f32]) -> Vec<f32> {
        (0..input.len() + 1 - kernel.len())
            .map(|i| {
                kernel
                    .iter()
                    .enumerate()
                    .map(|(k, &w)| w * input[i + k])
                    .sum()
            })
            .collect()
    }

    #[test]
    fn partitioned_conv_equals_global_conv() {
        let mut net = setup(4);
        let chips: Vec<ChipId> = net.mesh().chips().collect();
        let mut rng = TensorRng::seed(3);
        let global = rng.uniform(Shape::vector(32), -1.0, 1.0);
        let kernel = [0.25f32, 0.5, 0.25];
        let reference = conv1d_same(global.data(), &kernel);

        let parts = global.split(0, 4).unwrap();
        let out = halo_exchange(
            &mut net,
            &chips,
            &parts,
            0,
            1,
            Precision::F32,
            SimTime::ZERO,
        )
        .unwrap();
        let mut distributed = Vec::new();
        for padded in &out.outputs {
            distributed.extend(conv1d_valid(padded.data(), &kernel));
        }
        assert_eq!(distributed.len(), reference.len());
        for (d, r) in distributed.iter().zip(&reference) {
            assert!((d - r).abs() < 1e-5);
        }
        assert!(out.time > SimTime::ZERO);
    }

    #[test]
    fn rank2_halo_pads_along_requested_axis() {
        let mut net = setup(2);
        let chips: Vec<ChipId> = net.mesh().chips().collect();
        let t = Tensor::new(Shape::of(&[4, 2]), (0..8).map(|i| i as f32).collect());
        let parts = t.split(0, 2).unwrap();
        let out = halo_exchange(
            &mut net,
            &chips,
            &parts,
            0,
            1,
            Precision::F32,
            SimTime::ZERO,
        )
        .unwrap();
        // Part 0 padded: [zeros ; rows 0..2 ; row 2].
        assert_eq!(out.outputs[0].shape().dims(), &[4, 2]);
        assert_eq!(out.outputs[0].data()[0..2], [0.0, 0.0]);
        assert_eq!(out.outputs[0].data()[6..8], [4.0, 5.0]);
        // Part 1 padded: [row 1 ; rows 2..4 ; zeros].
        assert_eq!(out.outputs[1].data()[0..2], [2.0, 3.0]);
        assert_eq!(out.outputs[1].data()[6..8], [0.0, 0.0]);
    }

    #[test]
    fn neighbor_exchanges_are_concurrent() {
        // All boundary transfers are issued at the same start time over
        // disjoint links, so total time is about one halo transfer.
        let mut net = setup(8);
        let chips: Vec<ChipId> = net.mesh().chips().collect();
        let big = Tensor::fill(Shape::of(&[8 * 1024, 64]), 1.0);
        let parts = big.split(0, 8).unwrap();
        let out = halo_exchange(
            &mut net,
            &chips,
            &parts,
            0,
            8,
            Precision::F32,
            SimTime::ZERO,
        )
        .unwrap();
        let single = net.uncontended_time(1, Precision::F32.wire_bytes(8 * 64));
        assert!(out.time.seconds() < 3.0 * single, "time={}", out.time);
    }

    #[test]
    fn validates_inputs() {
        let mut net = setup(2);
        let chips: Vec<ChipId> = net.mesh().chips().collect();
        let parts = vec![Tensor::zeros(Shape::vector(4))];
        assert!(matches!(
            halo_exchange(
                &mut net,
                &chips,
                &parts,
                0,
                1,
                Precision::F32,
                SimTime::ZERO
            ),
            Err(CollectiveError::ParticipantMismatch { .. })
        ));
        let parts = vec![
            Tensor::zeros(Shape::vector(4)),
            Tensor::zeros(Shape::vector(4)),
        ];
        assert!(matches!(
            halo_exchange(
                &mut net,
                &chips,
                &parts,
                1,
                1,
                Precision::F32,
                SimTime::ZERO
            ),
            Err(CollectiveError::Tensor(_))
        ));
        assert!(matches!(
            halo_exchange(
                &mut net,
                &chips,
                &parts,
                0,
                5,
                Precision::F32,
                SimTime::ZERO
            ),
            Err(CollectiveError::IndivisiblePayload { .. })
        ));
    }

    #[test]
    fn zero_halo_is_identity_with_empty_pads() {
        let mut net = setup(2);
        let chips: Vec<ChipId> = net.mesh().chips().collect();
        let t = Tensor::from_slice(&[1.0, 2.0, 3.0, 4.0]);
        let parts = t.split(0, 2).unwrap();
        let out = halo_exchange(
            &mut net,
            &chips,
            &parts,
            0,
            0,
            Precision::F32,
            SimTime::ZERO,
        )
        .unwrap();
        assert_eq!(out.outputs[0].data(), parts[0].data());
        assert_eq!(out.outputs[1].data(), parts[1].data());
    }
}
