//! Property tests for the pod scheduler.
//!
//! Two invariants the whole design hangs on:
//!
//! * the slice allocator never double-books a chip and never hands out a
//!   dead one, no matter how arrivals, completions and faults interleave;
//! * preempting a job with a real checkpoint save and elastically
//!   restoring it — possibly onto a different slice shape — is
//!   bit-identical, end to end, for arbitrary campaigns.

use std::collections::BTreeMap;

use multipod_sched::{ArrivalConfig, PodScheduler, SchedConfig, SliceAllocator};
use multipod_topology::{ChipId, Multipod, MultipodConfig};
use proptest::prelude::*;

/// One step of an interleaved campaign against the allocator.
#[derive(Clone, Debug)]
enum Op {
    /// A job arrives wanting `2^log_chips` chips.
    Arrive { log_chips: u32 },
    /// The `sel`-th live job (mod live count) completes.
    Complete { sel: usize },
    /// Chip `sel % num_chips` dies.
    Fault { sel: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u32..6).prop_map(|log_chips| Op::Arrive { log_chips }),
        (0usize..64).prop_map(|sel| Op::Complete { sel }),
        (0usize..256).prop_map(|sel| Op::Fault { sel }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Under any interleaving of arrivals, completions and chip faults,
    /// every allocated slice covers only chips the allocator still
    /// considers owned by that job, no chip is owned by two jobs, and no
    /// allocation ever lands on a dead chip.
    #[test]
    fn allocator_never_double_books_or_uses_dead_chips(
        ops in proptest::collection::vec(op_strategy(), 1..120),
    ) {
        let mesh = Multipod::new(MultipodConfig::mesh(16, 8, true));
        let mut alloc = SliceAllocator::new(&mesh);
        let mut next_job = 0u64;
        // job -> chips of its slice
        let mut live: BTreeMap<u64, Vec<ChipId>> = BTreeMap::new();
        let mut dead: Vec<ChipId> = Vec::new();
        let num_chips = 16 * 8;

        for op in ops {
            match op {
                Op::Arrive { log_chips } => {
                    let chips = 1u32 << log_chips;
                    let job = next_job;
                    next_job += 1;
                    if let Some(slice) = alloc.allocate(job, chips).unwrap() {
                        prop_assert_eq!(slice.chips(), chips);
                        let owned = alloc.slice_chips(&slice);
                        for &c in &owned {
                            // Never a dead chip.
                            prop_assert!(!dead.contains(&c),
                                "job {} allocated dead chip {:?}", job, c);
                            // Never a chip some live job already holds.
                            for (other, theirs) in &live {
                                prop_assert!(!theirs.contains(&c),
                                    "chip {:?} double-booked by {} and {}", c, other, job);
                            }
                            prop_assert_eq!(alloc.owner(c), Some(job));
                        }
                        live.insert(job, owned);
                    }
                }
                Op::Complete { sel } => {
                    if live.is_empty() { continue; }
                    let job = *live.keys().nth(sel % live.len()).unwrap();
                    let owned = live.remove(&job).unwrap();
                    let released = alloc.free(job);
                    // Every non-dead chip of the slice comes back.
                    let expect = owned.iter().filter(|c| !dead.contains(c)).count() as u32;
                    prop_assert_eq!(released, expect);
                    for c in owned {
                        if !dead.contains(&c) {
                            prop_assert_eq!(alloc.owner(c), None);
                        }
                    }
                }
                Op::Fault { sel } => {
                    let chip = ChipId((sel % num_chips) as u32);
                    if dead.contains(&chip) { continue; }
                    let victim = alloc.mark_dead(chip);
                    dead.push(chip);
                    prop_assert!(alloc.is_dead(chip));
                    // The reported victim matches the model, and the
                    // killed job's remaining chips free up.
                    let expected = live.iter()
                        .find(|(_, chips)| chips.contains(&chip))
                        .map(|(j, _)| *j);
                    prop_assert_eq!(victim, expected);
                    if let Some(job) = victim {
                        live.remove(&job);
                        alloc.free(job);
                    }
                }
            }
            // Global accounting stays consistent.
            let owned_live: usize = live.values()
                .map(|chips| chips.iter().filter(|c| !dead.contains(c)).count())
                .sum();
            prop_assert_eq!(alloc.busy_chips() as usize, owned_live);
            prop_assert_eq!(alloc.live_chips() as usize, num_chips - dead.len());
        }
    }

    /// Whole campaigns — with preemption-heavy priority mixes — restore
    /// every preempted job bit-identically and deterministically: the
    /// same seed reproduces the exact report, and every elastic restore
    /// matches its save byte for byte (`restores_bit_identical`).
    #[test]
    fn preempt_restore_is_bit_identical_and_deterministic(
        seed in 0u64..1_000,
        jobs in 20u32..60,
    ) {
        let config = SchedConfig {
            mesh: MultipodConfig::mesh(32, 32, true),
            arrivals: ArrivalConfig {
                jobs,
                seed,
                // Heavy overload so big jobs block and preempt.
                mean_interarrival_seconds: 0.002,
                tenants: 4,
            },
            services: Vec::new(),
            state_elems: 256,
            lr: 0.05,
        };
        let run = || {
            let mut sched = PodScheduler::new(config.clone());
            sched.run().unwrap()
        };
        let a = run();
        prop_assert!(a.restores_bit_identical);
        prop_assert_eq!(a.completed, u64::from(jobs));
        // Preemption overhead is exactly the checkpoint traffic: the sum
        // over events never exceeds total save+restore time.
        prop_assert!(
            a.preemption_overhead.mean * a.preemption_overhead.count as f64
                <= a.save_seconds + a.restore_seconds + 1e-9
        );
        let b = run();
        prop_assert_eq!(a, b);
    }
}
