//! Job specifications and the deterministic arrival stream.
//!
//! The campaign's job mix stands in for serving-scale traffic: a heavy
//! stream of small eval jobs (latency-sensitive, highest priority) over a
//! base of BERT / ResNet-50 / DLRM training jobs at MLPerf slice sizes.
//! Arrivals are drawn from a seeded generator, so the same
//! [`ArrivalConfig`] always produces the same stream — campaigns are
//! reproducible experiments.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use multipod_models::{catalog, Workload};
use multipod_simnet::SimTime;

/// What a job runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobKind {
    /// BERT pre-training (LAMB, large slices).
    Bert,
    /// ResNet-50 training (LARS, medium slices).
    Resnet50,
    /// DLRM training (SGD, medium slices).
    Dlrm,
    /// Small eval-only traffic: short ResNet-50 inference-style passes
    /// standing in for user-facing requests.
    Eval,
}

impl JobKind {
    /// Stable lowercase label.
    pub fn label(self) -> &'static str {
        match self {
            JobKind::Bert => "bert",
            JobKind::Resnet50 => "resnet50",
            JobKind::Dlrm => "dlrm",
            JobKind::Eval => "eval",
        }
    }

    /// The workload model pricing one step of this job.
    pub fn workload(self) -> Workload {
        match self {
            JobKind::Bert => catalog::bert(),
            JobKind::Resnet50 | JobKind::Eval => catalog::resnet50(),
            JobKind::Dlrm => catalog::dlrm(),
        }
    }

    /// Scheduling priority: lower is more urgent. Eval traffic outranks
    /// training; BERT (the biggest slices) outranks the other trainers so
    /// it can preempt its way onto the mesh instead of starving.
    pub fn priority(self) -> u8 {
        match self {
            JobKind::Eval => 0,
            JobKind::Bert => 1,
            JobKind::Resnet50 => 2,
            JobKind::Dlrm => 3,
        }
    }
}

/// One job in the campaign.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Unique id, in arrival order.
    pub id: u64,
    /// What the job runs.
    pub kind: JobKind,
    /// Fair-share tenant the job bills to.
    pub tenant: u32,
    /// Scheduling priority (lower = more urgent).
    pub priority: u8,
    /// Chips the job gang-schedules (a power of two ≥ 2).
    pub chips: u32,
    /// Training/eval steps the job must complete.
    pub steps: u64,
    /// When the job arrives.
    pub arrival: SimTime,
}

/// A long-lived serving reservation: a slice held for the lifetime of
/// the campaign rather than a batch job that completes.
///
/// Services are allocated before the first arrival, are never preempted
/// (they outrank every job priority), and never complete. A chip-loss
/// fault inside a service's slice *migrates* the service: the scheduler
/// re-places it, preempting training jobs if the mesh is full.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServiceSpec {
    /// Human-readable name, reported in [`crate::SchedReport`].
    pub name: String,
    /// Chips the service reserves (a power of two ≥ 2).
    pub chips: u32,
}

/// Parameters of the deterministic arrival stream.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ArrivalConfig {
    /// Number of jobs to generate.
    pub jobs: u32,
    /// Seed for the stream.
    pub seed: u64,
    /// Mean inter-arrival gap in simulated seconds (exponential).
    pub mean_interarrival_seconds: f64,
    /// Number of fair-share tenants jobs are spread across.
    pub tenants: u32,
}

impl ArrivalConfig {
    /// A heavy canned stream: enough offered load to keep a 128×32 mesh
    /// backlogged, with ~half the jobs small eval traffic.
    pub fn heavy(jobs: u32, seed: u64) -> ArrivalConfig {
        ArrivalConfig {
            jobs,
            seed,
            mean_interarrival_seconds: 0.002,
            tenants: 8,
        }
    }
}

/// Generates the arrival stream for `config`: job kinds, slice sizes,
/// step budgets and exponential inter-arrival gaps all drawn from one
/// seeded generator. The same config always yields the same stream.
pub fn arrival_stream(config: &ArrivalConfig) -> Vec<JobSpec> {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut at = 0.0f64;
    let mut jobs = Vec::with_capacity(config.jobs as usize);
    for id in 0..u64::from(config.jobs) {
        let draw = rng.gen_range(0..100u32);
        let kind = match draw {
            0..=49 => JobKind::Eval,
            50..=69 => JobKind::Dlrm,
            70..=89 => JobKind::Resnet50,
            _ => JobKind::Bert,
        };
        let chips = match kind {
            JobKind::Eval => 1 << rng.gen_range(1..4u32), // 2..8
            JobKind::Dlrm => 1 << rng.gen_range(5..8u32), // 32..128
            JobKind::Resnet50 => 1 << rng.gen_range(6..9u32), // 64..256
            JobKind::Bert => 1 << rng.gen_range(7..10u32), // 128..512
        };
        let steps = match kind {
            JobKind::Eval => rng.gen_range(1..5u64),
            _ => rng.gen_range(5..25u64),
        };
        let gap = -config.mean_interarrival_seconds * (1.0 - rng.gen_range(0.0..1.0f64)).ln();
        at += gap;
        jobs.push(JobSpec {
            id,
            kind,
            tenant: rng.gen_range(0..config.tenants.max(1)),
            priority: kind.priority(),
            chips,
            steps,
            arrival: SimTime::from_seconds(at),
        });
    }
    jobs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_deterministic() {
        let config = ArrivalConfig::heavy(200, 7);
        assert_eq!(arrival_stream(&config), arrival_stream(&config));
    }

    #[test]
    fn different_seeds_differ() {
        let a = arrival_stream(&ArrivalConfig::heavy(50, 1));
        let b = arrival_stream(&ArrivalConfig::heavy(50, 2));
        assert_ne!(a, b);
    }

    #[test]
    fn arrivals_are_monotone_and_shapes_power_of_two() {
        let jobs = arrival_stream(&ArrivalConfig::heavy(500, 42));
        assert_eq!(jobs.len(), 500);
        let mut last = SimTime::ZERO;
        for job in &jobs {
            assert!(job.arrival >= last);
            last = job.arrival;
            assert!(job.chips.is_power_of_two() && job.chips >= 2);
            assert!(job.steps >= 1);
            assert_eq!(job.priority, job.kind.priority());
        }
    }

    #[test]
    fn the_mix_covers_every_kind() {
        let jobs = arrival_stream(&ArrivalConfig::heavy(400, 3));
        for kind in [
            JobKind::Eval,
            JobKind::Dlrm,
            JobKind::Resnet50,
            JobKind::Bert,
        ] {
            assert!(
                jobs.iter().any(|j| j.kind == kind),
                "missing {:?} in the mix",
                kind
            );
        }
    }
}
