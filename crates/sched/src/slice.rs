//! Rectangular slice allocation over the live chips of a 2-D mesh.
//!
//! TPU pods are multiplexed across jobs by carving the mesh into
//! rectangular *slices* (Podracer's model): every job gets a contiguous
//! `w × h` rectangle of chips, gang-scheduled as a unit. The allocator
//! here is a deterministic buddy-style first-fit: candidate shapes are
//! power-of-two rectangles, anchors are scanned in a fixed shape-aligned
//! order, and dead chips (PR 2 chip-loss state) poison every rectangle
//! that covers them. Determinism is what makes whole scheduling campaigns
//! byte-reproducible.

use serde::{Deserialize, Serialize};

use multipod_topology::{ChipId, Coord, Multipod};

use crate::SchedError;

/// One allocated rectangle of chips.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Slice {
    /// Anchor column (inclusive).
    pub x0: u32,
    /// Anchor row (inclusive).
    pub y0: u32,
    /// Width in chips.
    pub w: u32,
    /// Height in chips.
    pub h: u32,
}

impl Slice {
    /// Chips in the slice.
    pub fn chips(&self) -> u32 {
        self.w * self.h
    }

    /// Whether the slice covers `(x, y)`.
    pub fn contains(&self, x: u32, y: u32) -> bool {
        x >= self.x0 && x < self.x0 + self.w && y >= self.y0 && y < self.y0 + self.h
    }

    /// The slice's shape as `(w, h)`.
    pub fn shape(&self) -> (u32, u32) {
        (self.w, self.h)
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Cell {
    Free,
    Dead,
    Busy(u64),
}

/// Deterministic first-fit/buddy allocator over the mesh's live chips.
///
/// Cells are `Free`, `Dead`, or `Busy(job)`. Allocation scans candidate
/// power-of-two shapes from most-square to most-elongated and, within a
/// shape, anchors aligned to the shape itself (buddy alignment — slices
/// of one shape tile the mesh exactly, which keeps fragmentation at
/// zero when the job mix is power-of-two, as TPU slices are).
#[derive(Clone, Debug)]
pub struct SliceAllocator {
    x_len: u32,
    y_len: u32,
    cells: Vec<Cell>,
}

impl SliceAllocator {
    /// Builds an allocator over `mesh`, marking already-isolated chips
    /// dead.
    pub fn new(mesh: &Multipod) -> SliceAllocator {
        let x_len = mesh.x_len();
        let y_len = mesh.y_len();
        let cells = mesh
            .chips()
            .map(|c| {
                if mesh.is_isolated(c) {
                    Cell::Dead
                } else {
                    Cell::Free
                }
            })
            .collect();
        SliceAllocator {
            x_len,
            y_len,
            cells,
        }
    }

    fn idx(&self, x: u32, y: u32) -> usize {
        (y * self.x_len + x) as usize
    }

    /// Mesh width.
    pub fn x_len(&self) -> u32 {
        self.x_len
    }

    /// Mesh height.
    pub fn y_len(&self) -> u32 {
        self.y_len
    }

    /// Candidate `(w, h)` shapes for a slice of `chips`, most-square
    /// first, every one a power-of-two rectangle that fits the mesh.
    ///
    /// # Errors
    ///
    /// [`SchedError::UnplaceableJob`] when `chips` is not a power of two
    /// ≥ 2 or no rectangle of that area fits the mesh at all.
    pub fn shapes_for(&self, job: u64, chips: u32) -> Result<Vec<(u32, u32)>, SchedError> {
        if !(chips.is_power_of_two() && chips >= 2) {
            return Err(SchedError::UnplaceableJob { job, chips });
        }
        let mut shapes: Vec<(u32, u32)> = Vec::new();
        let mut w = 1u32;
        while w <= chips {
            let h = chips / w;
            if w <= self.x_len && h <= self.y_len {
                shapes.push((w, h));
            }
            w *= 2;
        }
        if shapes.is_empty() {
            return Err(SchedError::UnplaceableJob { job, chips });
        }
        // Most-square first; ties broken wider-first so the order is total.
        shapes.sort_by_key(|&(w, h)| (w.abs_diff(h), std::cmp::Reverse(w)));
        Ok(shapes)
    }

    fn rect_free(&self, x0: u32, y0: u32, w: u32, h: u32) -> bool {
        for y in y0..y0 + h {
            for x in x0..x0 + w {
                if self.cells[self.idx(x, y)] != Cell::Free {
                    return false;
                }
            }
        }
        true
    }

    /// First free shape-aligned anchor for a `w × h` rectangle, scanning
    /// rows outward then columns (y-major), or `None` when nothing fits.
    fn find_anchor(&self, w: u32, h: u32) -> Option<(u32, u32)> {
        let mut y0 = 0;
        while y0 + h <= self.y_len {
            let mut x0 = 0;
            while x0 + w <= self.x_len {
                if self.rect_free(x0, y0, w, h) {
                    return Some((x0, y0));
                }
                x0 += w;
            }
            y0 += h;
        }
        None
    }

    /// Allocates a slice of `chips` for `job`: the first buddy-aligned
    /// free rectangle under the deterministic shape/anchor scan, or
    /// `None` when the request cannot currently be satisfied.
    ///
    /// # Errors
    ///
    /// [`SchedError::UnplaceableJob`] when no shape of this area can
    /// *ever* fit the mesh (as opposed to not fitting right now).
    pub fn allocate(&mut self, job: u64, chips: u32) -> Result<Option<Slice>, SchedError> {
        for (w, h) in self.shapes_for(job, chips)? {
            if let Some((x0, y0)) = self.find_anchor(w, h) {
                let slice = Slice { x0, y0, w, h };
                for y in y0..y0 + h {
                    for x in x0..x0 + w {
                        let i = self.idx(x, y);
                        debug_assert_eq!(self.cells[i], Cell::Free);
                        self.cells[i] = Cell::Busy(job);
                    }
                }
                return Ok(Some(slice));
            }
        }
        Ok(None)
    }

    /// Whether a slice of `chips` could be allocated right now, without
    /// allocating it.
    pub fn would_fit(&self, job: u64, chips: u32) -> Result<bool, SchedError> {
        for (w, h) in self.shapes_for(job, chips)? {
            if self.find_anchor(w, h).is_some() {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Frees every cell `job` occupies (dead cells stay dead). Returns
    /// the number of chips released.
    pub fn free(&mut self, job: u64) -> u32 {
        let mut released = 0;
        for cell in &mut self.cells {
            if *cell == Cell::Busy(job) {
                *cell = Cell::Free;
                released += 1;
            }
        }
        released
    }

    /// Marks a chip dead. Returns the job occupying it, if any; the
    /// caller is responsible for killing that job (its remaining cells
    /// free via [`SliceAllocator::free`], this one stays dead).
    pub fn mark_dead(&mut self, chip: ChipId) -> Option<u64> {
        let i = chip.index();
        let previous = self.cells[i];
        self.cells[i] = Cell::Dead;
        match previous {
            Cell::Busy(job) => Some(job),
            _ => None,
        }
    }

    /// The mesh coordinate of a cell index, for fault bookkeeping.
    pub fn coord_of(&self, chip: ChipId) -> Coord {
        Coord {
            x: chip.index() as u32 % self.x_len,
            y: chip.index() as u32 / self.x_len,
        }
    }

    /// Chips not dead.
    pub fn live_chips(&self) -> u32 {
        self.cells.iter().filter(|c| **c != Cell::Dead).count() as u32
    }

    /// Chips currently allocated to jobs.
    pub fn busy_chips(&self) -> u32 {
        self.cells
            .iter()
            .filter(|c| matches!(c, Cell::Busy(_)))
            .count() as u32
    }

    /// The job occupying `chip`, if any.
    pub fn owner(&self, chip: ChipId) -> Option<u64> {
        match self.cells[chip.index()] {
            Cell::Busy(job) => Some(job),
            _ => None,
        }
    }

    /// Whether `chip` is dead.
    pub fn is_dead(&self, chip: ChipId) -> bool {
        self.cells[chip.index()] == Cell::Dead
    }

    /// Chip ids covered by `slice` in row-major order.
    pub fn slice_chips(&self, slice: &Slice) -> Vec<ChipId> {
        let mut out = Vec::with_capacity(slice.chips() as usize);
        for y in slice.y0..slice.y0 + slice.h {
            for x in slice.x0..slice.x0 + slice.w {
                out.push(ChipId(y * self.x_len + x));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multipod_topology::MultipodConfig;

    fn allocator(x: u32, y: u32) -> SliceAllocator {
        SliceAllocator::new(&Multipod::new(MultipodConfig::mesh(x, y, true)))
    }

    #[test]
    fn shapes_are_most_square_first() {
        let a = allocator(8, 8);
        let shapes = a.shapes_for(0, 16).unwrap();
        assert_eq!(shapes[0], (4, 4));
        assert!(shapes.contains(&(8, 2)) && shapes.contains(&(2, 8)));
    }

    #[test]
    fn allocation_is_aligned_and_disjoint() {
        let mut a = allocator(8, 4);
        let s1 = a.allocate(1, 8).unwrap().unwrap();
        let s2 = a.allocate(2, 8).unwrap().unwrap();
        assert_ne!((s1.x0, s1.y0), (s2.x0, s2.y0));
        assert_eq!(s1.x0 % s1.w, 0);
        assert_eq!(a.busy_chips(), 16);
        for y in 0..4 {
            for x in 0..8 {
                let both = s1.contains(x, y) && s2.contains(x, y);
                assert!(!both, "slices overlap at ({x},{y})");
            }
        }
    }

    #[test]
    fn full_mesh_rejects_then_accepts_after_free() {
        let mut a = allocator(4, 4);
        assert!(a.allocate(1, 16).unwrap().is_some());
        assert!(a.allocate(2, 2).unwrap().is_none());
        a.free(1);
        assert!(a.allocate(2, 2).unwrap().is_some());
    }

    #[test]
    fn dead_chips_poison_rectangles() {
        let mut a = allocator(4, 4);
        a.mark_dead(ChipId(0));
        // The whole mesh no longer fits, but the other 4x2 half does.
        assert!(a.allocate(1, 16).unwrap().is_none());
        let s = a.allocate(1, 8).unwrap().unwrap();
        assert!(!s.contains(0, 0));
    }

    #[test]
    fn mark_dead_reports_the_occupant() {
        let mut a = allocator(4, 4);
        let s = a.allocate(7, 4).unwrap().unwrap();
        let victim = ChipId(s.y0 * 4 + s.x0);
        assert_eq!(a.mark_dead(victim), Some(7));
        assert_eq!(a.free(7), 3); // the dead cell is not released
        assert!(a.is_dead(victim));
        assert_eq!(a.live_chips(), 15);
    }

    #[test]
    fn non_power_of_two_is_a_typed_error() {
        let mut a = allocator(4, 4);
        assert!(matches!(
            a.allocate(9, 3),
            Err(SchedError::UnplaceableJob { job: 9, chips: 3 })
        ));
    }

    #[test]
    fn oversized_request_is_a_typed_error() {
        let mut a = allocator(4, 4);
        assert!(matches!(
            a.allocate(1, 32),
            Err(SchedError::UnplaceableJob { .. })
        ));
    }
}
