//! Typed scheduler errors.

use std::error::Error;
use std::fmt;

use multipod_ckpt::CkptError;
use multipod_core::StepError;
use multipod_optim::OptimError;
use multipod_topology::TopologyError;

/// A scheduling campaign failed.
#[derive(Debug)]
pub enum SchedError {
    /// A job asked for more chips than the mesh has, or a chip count no
    /// rectangular power-of-two slice can cover.
    UnplaceableJob {
        /// The offending job id.
        job: u64,
        /// Chips the job requested.
        chips: u32,
    },
    /// The checkpoint layer failed during a preemption save or an elastic
    /// restore.
    Ckpt(CkptError),
    /// An elastic restore returned state that was not bit-identical to
    /// what the preemption save captured.
    RestoreMismatch {
        /// The job whose state diverged.
        job: u64,
    },
    /// The step-time model rejected a job's slice shape.
    Step(StepError),
    /// A job's optimizer update failed (shape drift in model state).
    Optim(OptimError),
    /// The mesh configuration itself was invalid.
    Topology(TopologyError),
    /// A long-lived service reservation could not be placed on the mesh
    /// (at campaign start, or after a fault when no migration target
    /// exists even with every job preempted).
    ServiceUnplaceable {
        /// The service's name.
        service: String,
        /// Chips the service reserves.
        chips: u32,
    },
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::UnplaceableJob { job, chips } => {
                write!(
                    f,
                    "job {job} requests {chips} chips: no slice shape fits the mesh"
                )
            }
            SchedError::Ckpt(e) => write!(f, "preemption checkpoint failed: {e}"),
            SchedError::RestoreMismatch { job } => {
                write!(
                    f,
                    "restored state for job {job} is not bit-identical to the save"
                )
            }
            SchedError::Step(e) => write!(f, "step-time model rejected a job: {e}"),
            SchedError::Optim(e) => write!(f, "job model update failed: {e}"),
            SchedError::Topology(e) => write!(f, "invalid mesh: {e}"),
            SchedError::ServiceUnplaceable { service, chips } => {
                write!(
                    f,
                    "service '{service}' reserves {chips} chips: no slice fits the mesh"
                )
            }
        }
    }
}

impl Error for SchedError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SchedError::Ckpt(e) => Some(e),
            SchedError::Step(e) => Some(e),
            SchedError::Optim(e) => Some(e),
            SchedError::Topology(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CkptError> for SchedError {
    fn from(e: CkptError) -> SchedError {
        SchedError::Ckpt(e)
    }
}

impl From<StepError> for SchedError {
    fn from(e: StepError) -> SchedError {
        SchedError::Step(e)
    }
}

impl From<OptimError> for SchedError {
    fn from(e: OptimError) -> SchedError {
        SchedError::Optim(e)
    }
}

impl From<TopologyError> for SchedError {
    fn from(e: TopologyError) -> SchedError {
        SchedError::Topology(e)
    }
}
