//! The gang scheduler: priorities, fair share, preemption via real
//! checkpoint save/restore, and the campaign driver.
//!
//! The scheduler runs an event loop over simnet's sim-time clock
//! ([`multipod_simnet::EventQueue`]). Jobs arrive from a deterministic
//! stream, queue under `(priority, fair-share usage, arrival)` order, and
//! gang-schedule onto rectangular slices from the [`SliceAllocator`].
//! A blocked higher-priority job preempts lower-priority work: the
//! victims' model state is saved through `multipod-ckpt`'s sharded save
//! (priced on a slice-shaped network), their slices free when the save
//! completes, and when a preempted job is re-dispatched the checkpoint is
//! restored — with the restored bundle verified **bit-identical** to what
//! was saved, the PR 4 elastic-restart guarantee. Chip-loss faults kill
//! the occupying job back to its last checkpoint.
//!
//! Every decision is deterministic, so a campaign re-run is byte-identical
//! — the property `repro_sched --check-determinism` gates in CI.

use std::collections::BTreeMap;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use multipod_ckpt::{
    restore_checkpoint, save_checkpoint, Checkpoint, PcieCost, ShardPlacement, StateBundle,
};
use multipod_core::step::step_breakdown;
use multipod_core::StepOptions;
use multipod_faults::{FaultAction, FaultPlan};
use multipod_optim::{Optimizer, SgdMomentum};
use multipod_simnet::{EventQueue, Network, NetworkConfig, SimTime};
use multipod_telemetry::{DistSummary, MetricId, Subsystem, Telemetry};
use multipod_tensor::{Shape, Tensor};
use multipod_topology::{ChipId, Multipod, MultipodConfig};
use multipod_trace::{SpanCategory, SpanEvent, TraceSink, Track};

use crate::job::{arrival_stream, ArrivalConfig, JobKind, JobSpec, ServiceSpec};
use crate::slice::{Slice, SliceAllocator};
use crate::SchedError;

/// Job ids at or above this value belong to service reservations, not
/// stream jobs (stream ids are dense from 0, far below this).
const SERVICE_ID_BASE: u64 = 1 << 48;

/// Campaign parameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SchedConfig {
    /// The machine being multiplexed.
    pub mesh: MultipodConfig,
    /// The arrival stream.
    pub arrivals: ArrivalConfig,
    /// Long-lived serving reservations, allocated before the first job
    /// arrival and held for the whole campaign.
    pub services: Vec<ServiceSpec>,
    /// Elements of model + optimizer state each job checkpoints.
    pub state_elems: usize,
    /// Learning rate of the per-job model updates.
    pub lr: f32,
}

impl SchedConfig {
    /// The canned heavy heterogeneous campaign on a given mesh.
    pub fn demo(mesh: MultipodConfig, jobs: u32, seed: u64) -> SchedConfig {
        SchedConfig {
            mesh,
            arrivals: ArrivalConfig::heavy(jobs, seed),
            services: Vec::new(),
            state_elems: 4096,
            lr: 0.05,
        }
    }
}

/// Per-kind campaign stats.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct KindStats {
    /// Job kind label.
    pub kind: String,
    /// Jobs of this kind in the stream.
    pub jobs: u64,
    /// Jobs that ran to completion.
    pub completed: u64,
    /// Mean queue wait across dispatches, seconds.
    pub mean_queue_wait_seconds: f64,
    /// Mean turnaround (arrival → completion), seconds.
    pub mean_turnaround_seconds: f64,
}

/// Per-service campaign stats.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ServiceStats {
    /// Service name.
    pub name: String,
    /// Chips reserved.
    pub chips: u32,
    /// Final slice shape `(w, h)`; `(0, 0)` if displaced at campaign end.
    pub shape: (u32, u32),
    /// Fault-driven migrations to a new slice.
    pub migrations: u64,
}

/// What a campaign did and what it cost.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SchedReport {
    /// Jobs in the stream.
    pub jobs: u64,
    /// Jobs that ran to completion.
    pub completed: u64,
    /// Preemptions performed (each a real checkpoint save).
    pub preemptions: u64,
    /// Jobs killed by chip loss (recovered from their last checkpoint).
    pub fault_kills: u64,
    /// Elastic restores performed on re-dispatch.
    pub restores: u64,
    /// Every restore was bit-identical to its save.
    pub restores_bit_identical: bool,
    /// Completion time of the last job, seconds.
    pub makespan_seconds: f64,
    /// Busy-chip-seconds / live-chip-seconds over the makespan.
    pub mean_utilization: f64,
    /// Queue-wait distribution across dispatches, seconds.
    pub queue_wait: DistSummary,
    /// Preemption overhead distribution (save + restore per event), seconds.
    pub preemption_overhead: DistSummary,
    /// Total simulated checkpoint-save time, seconds.
    pub save_seconds: f64,
    /// Total simulated restore time, seconds.
    pub restore_seconds: f64,
    /// Per-kind breakdown, in kind order.
    pub per_kind: Vec<KindStats>,
    /// Long-lived service reservations, in config order.
    pub services: Vec<ServiceStats>,
}

/// Events driving the scheduler's sim-time loop.
#[derive(Clone, Debug)]
enum Event {
    /// Job `index` of the stream arrives.
    Arrival(usize),
    /// A running job finished its remaining steps. Stale completions
    /// (after a preemption or fault kill) are filtered by `token`.
    Completion { job: u64, token: u64 },
    /// Preemption saves finished; the victims' slices free up.
    SliceFreed { victims: Vec<u64> },
    /// Chip-loss fault `index` of the plan fires.
    Fault(usize),
}

/// A job's mutable model state: the "real training" the checkpoint
/// protocol protects. Small on purpose — thousands of jobs run per
/// campaign — but advanced with genuine optimizer updates so state
/// divergence would be caught by the bit-identity check.
struct JobModel {
    weights: Tensor,
    opt: SgdMomentum,
}

impl JobModel {
    fn fresh(spec: &JobSpec, elems: usize, lr: f32) -> JobModel {
        // Deterministic per-job initialization.
        let data: Vec<f32> = (0..elems)
            .map(|i| {
                let h = spec
                    .id
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add(i as u64)
                    .wrapping_mul(0xbf58_476d_1ce4_e5b9);
                ((h >> 40) as f32 / (1u64 << 24) as f32) - 0.5
            })
            .collect();
        JobModel {
            weights: Tensor::new(Shape::vector(elems), data),
            opt: SgdMomentum::new(lr, 0.9),
        }
    }

    /// One deterministic training step: the gradient is a pure function
    /// of the job id and step index.
    fn advance(&mut self, spec: &JobSpec, step: u64) -> Result<(), SchedError> {
        let g = spec
            .id
            .wrapping_mul(0x94d0_49bb_1331_11eb)
            .wrapping_add(step);
        let grad = Tensor::fill(
            self.weights.shape().clone(),
            ((g >> 40) as f32 / (1u64 << 24) as f32) - 0.5,
        );
        Ok(self.opt.step(0, &mut self.weights, &grad)?)
    }

    fn bundle(&self, steps_done: u64) -> Result<StateBundle, SchedError> {
        Ok(StateBundle::from_optimizer(
            steps_done,
            &self.weights,
            &self.opt,
            1,
        )?)
    }

    fn load(&mut self, bundle: &StateBundle) -> Result<(), SchedError> {
        self.weights = bundle.weights.clone();
        bundle.restore_optimizer(&mut self.opt, 1)?;
        Ok(())
    }
}

/// Runtime state of one job.
struct JobRun {
    spec: JobSpec,
    model: JobModel,
    steps_done: u64,
    /// Last checkpoint (from a preemption save), if any.
    ckpt: Option<Checkpoint>,
    /// When the job last entered the queue.
    enqueued_at: SimTime,
    /// Whether in-memory state was lost (fault kill) and the next
    /// dispatch must restart from the last checkpoint or from scratch.
    lost_state: bool,
    /// Set while a preemption save is streaming out of the slice.
    draining: bool,
    preemptions: u64,
    queue_waits: Vec<f64>,
    completed_at: Option<SimTime>,
}

/// Runtime state of one long-lived service reservation.
struct ServiceRun {
    spec: ServiceSpec,
    /// Current slice, or `None` while displaced by a fault and awaiting
    /// re-placement.
    slice: Option<Slice>,
    migrations: u64,
}

/// A dispatched job's slice occupancy.
struct Running {
    slice: Slice,
    started: SimTime,
    /// When the restore (if any) finished and stepping began.
    compute_from: SimTime,
    step_seconds: f64,
    token: u64,
}

/// Per-(shape, elems) checkpoint pricing context: a slice-shaped network
/// and placement, reused across every save/restore of that shape.
struct ShapeCtx {
    net: Network,
    placement: ShardPlacement,
}

/// The multi-tenant pod scheduler.
pub struct PodScheduler {
    config: SchedConfig,
    allocator: SliceAllocator,
    jobs: BTreeMap<u64, JobRun>,
    running: BTreeMap<u64, Running>,
    services: Vec<ServiceRun>,
    pending: Vec<u64>,
    tenant_usage: BTreeMap<u32, f64>,
    /// Memoized per-(kind chips) step seconds.
    step_cache: BTreeMap<(&'static str, u32), f64>,
    /// Memoized per-shape checkpoint pricing networks.
    shape_cache: BTreeMap<(u32, u32), ShapeCtx>,
    pcie: PcieCost,
    telemetry: Option<Arc<Telemetry>>,
    trace: Option<Arc<dyn TraceSink>>,
    // Utilization accounting.
    clock: SimTime,
    busy_area: f64,
    live_area: f64,
    // Tallies.
    next_token: u64,
    preemptions: u64,
    fault_kills: u64,
    restores: u64,
    restores_identical: bool,
    save_seconds: f64,
    restore_seconds: f64,
    preempt_overheads: Vec<f64>,
    /// Per-job pending restore cost attributed on re-dispatch.
    pending_restore_overhead: BTreeMap<u64, f64>,
}

impl PodScheduler {
    /// Builds a scheduler over the configured mesh.
    pub fn new(config: SchedConfig) -> PodScheduler {
        let mesh = Multipod::new(config.mesh.clone());
        PodScheduler {
            allocator: SliceAllocator::new(&mesh),
            jobs: BTreeMap::new(),
            running: BTreeMap::new(),
            services: Vec::new(),
            pending: Vec::new(),
            tenant_usage: BTreeMap::new(),
            step_cache: BTreeMap::new(),
            shape_cache: BTreeMap::new(),
            pcie: PcieCost::criteo(),
            telemetry: None,
            trace: None,
            clock: SimTime::ZERO,
            busy_area: 0.0,
            live_area: 0.0,
            next_token: 0,
            preemptions: 0,
            fault_kills: 0,
            restores: 0,
            restores_identical: true,
            save_seconds: 0.0,
            restore_seconds: 0.0,
            preempt_overheads: Vec::new(),
            pending_restore_overhead: BTreeMap::new(),
            config,
        }
    }

    /// Attaches a telemetry registry: queue waits, preemption overheads
    /// and checkpoint costs flow into `pod.*` metrics.
    pub fn set_telemetry(&mut self, telemetry: Arc<Telemetry>) {
        self.telemetry = Some(telemetry);
    }

    /// Attaches a trace sink: job lifecycle spans (`Sched` category) and
    /// the checkpoint traffic of every preemption are recorded.
    pub fn set_trace_sink(&mut self, sink: Arc<dyn TraceSink>) {
        self.trace = Some(sink);
    }

    fn observe(&self, name: &'static str, value: f64) {
        if let Some(t) = &self.telemetry {
            t.observe(MetricId::new(Subsystem::Pod, name), value);
        }
    }

    fn count(&self, name: &'static str, by: u64) {
        if let Some(t) = &self.telemetry {
            t.inc_counter(MetricId::new(Subsystem::Pod, name), by);
        }
    }

    fn span(&self, name: &'static str, start: SimTime, end: SimTime, args: &[(&str, f64)]) {
        if let Some(sink) = &self.trace {
            let mut span = SpanEvent::new(Track::Sim, SpanCategory::Sched, name, start, end);
            for &(k, v) in args {
                span = span.with_arg(k, v);
            }
            sink.record_span(span);
        }
    }

    /// Advances the utilization integrals to `now`.
    fn advance_clock(&mut self, now: SimTime) {
        let dt = now - self.clock;
        if dt > 0.0 {
            self.busy_area += dt * f64::from(self.allocator.busy_chips());
            self.live_area += dt * f64::from(self.allocator.live_chips());
            self.clock = now;
        }
    }

    /// Simulated seconds of one step of `kind` on a `chips` slice,
    /// memoized across the campaign.
    fn step_seconds(&mut self, kind: JobKind, chips: u32) -> Result<f64, SchedError> {
        let key = (kind.label(), chips);
        if let Some(&s) = self.step_cache.get(&key) {
            return Ok(s);
        }
        let breakdown = step_breakdown(&kind.workload(), chips, &StepOptions::default())?;
        let s = breakdown.total();
        self.step_cache.insert(key, s);
        Ok(s)
    }

    fn shape_ctx(&mut self, shape: (u32, u32)) -> Result<&mut ShapeCtx, SchedError> {
        if !self.shape_cache.contains_key(&shape) {
            let mesh = Multipod::new(MultipodConfig::mesh(shape.0, shape.1, false));
            let placement = ShardPlacement::plan(&mesh, &[], self.config.state_elems)?;
            let mut net = Network::new(mesh, NetworkConfig::tpu_v3());
            if let Some(sink) = &self.trace {
                net.set_trace_sink(sink.clone());
            }
            if let Some(t) = &self.telemetry {
                net.set_telemetry(t.clone());
            }
            self.shape_cache.insert(shape, ShapeCtx { net, placement });
        }
        Ok(self.shape_cache.get_mut(&shape).expect("just inserted"))
    }

    /// Queue order: priority, then fair-share usage (lighter tenants
    /// first), then arrival, then id — a total order, so scheduling is
    /// deterministic.
    fn queue_order(&mut self) {
        let usage = &self.tenant_usage;
        let jobs = &self.jobs;
        self.pending.sort_by(|a, b| {
            let ja = &jobs[a];
            let jb = &jobs[b];
            let ua = usage.get(&ja.spec.tenant).copied().unwrap_or(0.0);
            let ub = usage.get(&jb.spec.tenant).copied().unwrap_or(0.0);
            ja.spec
                .priority
                .cmp(&jb.spec.priority)
                .then(ua.total_cmp(&ub))
                .then(ja.spec.arrival.cmp(&jb.spec.arrival))
                .then(a.cmp(b))
        });
    }

    /// Runs the campaign to completion.
    ///
    /// # Errors
    ///
    /// [`SchedError`] when a job can never fit the mesh, the checkpoint
    /// layer fails, or a restore is not bit-identical.
    pub fn run(&mut self) -> Result<SchedReport, SchedError> {
        let stream = arrival_stream(&self.config.arrivals);
        // Pre-validate every job's shape so impossible requests surface
        // as typed errors before the campaign starts.
        for spec in &stream {
            self.allocator.shapes_for(spec.id, spec.chips)?;
        }
        self.run_stream(stream, &FaultPlan::new())
    }

    /// Runs the campaign with a chip-loss fault plan (link faults and
    /// stragglers are ignored; the scheduler models whole-chip loss).
    ///
    /// # Errors
    ///
    /// As [`PodScheduler::run`].
    pub fn run_with_faults(&mut self, plan: &FaultPlan) -> Result<SchedReport, SchedError> {
        let stream = arrival_stream(&self.config.arrivals);
        for spec in &stream {
            self.allocator.shapes_for(spec.id, spec.chips)?;
        }
        self.run_stream(stream, plan)
    }

    fn run_stream(
        &mut self,
        stream: Vec<JobSpec>,
        faults: &FaultPlan,
    ) -> Result<SchedReport, SchedError> {
        // Service reservations claim their slices before the first job
        // arrives — they are the highest-priority tenants on the mesh.
        for (i, spec) in self.config.services.clone().into_iter().enumerate() {
            let id = SERVICE_ID_BASE + i as u64;
            let slice = self.allocator.allocate(id, spec.chips).map_err(|_| {
                SchedError::ServiceUnplaceable {
                    service: spec.name.clone(),
                    chips: spec.chips,
                }
            })?;
            let Some(slice) = slice else {
                return Err(SchedError::ServiceUnplaceable {
                    service: spec.name.clone(),
                    chips: spec.chips,
                });
            };
            self.count("service_placements", 1);
            self.services.push(ServiceRun {
                spec,
                slice: Some(slice),
                migrations: 0,
            });
        }

        let mut queue: EventQueue<Event> = EventQueue::new();
        for (i, spec) in stream.iter().enumerate() {
            queue.schedule(spec.arrival, Event::Arrival(i));
        }
        let fault_chips: Vec<(SimTime, ChipId)> = faults
            .events()
            .iter()
            .filter_map(|e| match e.action {
                FaultAction::ChipDown { chip } => Some((e.at, chip)),
                _ => None,
            })
            .collect();
        for (i, (at, _)) in fault_chips.iter().enumerate() {
            queue.schedule(*at, Event::Fault(i));
        }

        while let Some((now, event)) = queue.pop() {
            self.advance_clock(now);
            match event {
                Event::Arrival(i) => {
                    let spec = stream[i].clone();
                    self.count("arrivals", 1);
                    let id = spec.id;
                    let model = JobModel::fresh(&spec, self.config.state_elems, self.config.lr);
                    self.jobs.insert(
                        id,
                        JobRun {
                            spec,
                            model,
                            steps_done: 0,
                            ckpt: None,
                            enqueued_at: now,
                            lost_state: false,
                            draining: false,
                            preemptions: 0,
                            queue_waits: Vec::new(),
                            completed_at: None,
                        },
                    );
                    self.pending.push(id);
                    self.schedule_round(now, &mut queue)?;
                }
                Event::Completion { job, token } => {
                    let valid = self.running.get(&job).is_some_and(|r| r.token == token);
                    if !valid {
                        continue;
                    }
                    self.complete_job(job, now)?;
                    self.schedule_round(now, &mut queue)?;
                }
                Event::SliceFreed { victims } => {
                    for v in victims {
                        // A fault may have killed (and already freed) a
                        // draining victim; it could even be running again
                        // on a new slice by now. Only release slices of
                        // jobs still draining.
                        let Some(run) = self.jobs.get_mut(&v) else {
                            continue;
                        };
                        if !run.draining {
                            continue;
                        }
                        run.draining = false;
                        run.enqueued_at = now;
                        self.allocator.free(v);
                        self.pending.push(v);
                    }
                    self.schedule_round(now, &mut queue)?;
                }
                Event::Fault(i) => {
                    let (_, chip) = fault_chips[i];
                    self.handle_fault(chip, now)?;
                    self.schedule_round(now, &mut queue)?;
                }
            }
        }

        // Drain any jobs still draining at the end (their SliceFreed
        // event fired; pending jobs that never fit again simply report
        // as uncompleted).
        let end = self.clock;
        let completed: u64 = self
            .jobs
            .values()
            .filter(|j| j.completed_at.is_some())
            .count() as u64;
        let queue_wait = DistSummary::of(
            self.jobs
                .values()
                .flat_map(|j| j.queue_waits.clone())
                .collect(),
        );
        let preemption_overhead = DistSummary::of(self.preempt_overheads.clone());
        let mean_utilization = if self.live_area > 0.0 {
            self.busy_area / self.live_area
        } else {
            0.0
        };
        if let Some(t) = &self.telemetry {
            t.set_gauge(
                MetricId::new(Subsystem::Pod, "mean_utilization"),
                mean_utilization,
            );
        }

        let mut per_kind = Vec::new();
        for kind in [
            JobKind::Eval,
            JobKind::Bert,
            JobKind::Resnet50,
            JobKind::Dlrm,
        ] {
            let of_kind: Vec<&JobRun> =
                self.jobs.values().filter(|j| j.spec.kind == kind).collect();
            if of_kind.is_empty() {
                continue;
            }
            let waits: Vec<f64> = of_kind.iter().flat_map(|j| j.queue_waits.clone()).collect();
            let turnarounds: Vec<f64> = of_kind
                .iter()
                .filter_map(|j| j.completed_at.map(|c| c - j.spec.arrival))
                .collect();
            per_kind.push(KindStats {
                kind: kind.label().to_string(),
                jobs: of_kind.len() as u64,
                completed: of_kind.iter().filter(|j| j.completed_at.is_some()).count() as u64,
                mean_queue_wait_seconds: mean(&waits),
                mean_turnaround_seconds: mean(&turnarounds),
            });
        }

        Ok(SchedReport {
            jobs: self.jobs.len() as u64,
            completed,
            preemptions: self.preemptions,
            fault_kills: self.fault_kills,
            restores: self.restores,
            restores_bit_identical: self.restores_identical,
            makespan_seconds: end.seconds(),
            mean_utilization,
            queue_wait,
            preemption_overhead,
            save_seconds: self.save_seconds,
            restore_seconds: self.restore_seconds,
            per_kind,
            services: self
                .services
                .iter()
                .map(|s| ServiceStats {
                    name: s.spec.name.clone(),
                    chips: s.spec.chips,
                    shape: s.slice.map_or((0, 0), |sl| sl.shape()),
                    migrations: s.migrations,
                })
                .collect(),
        })
    }

    /// One scheduling round: dispatch every pending job that fits (in
    /// queue order, smaller jobs backfilling behind blocked big ones),
    /// then consider one preemption for the highest-priority blocked job.
    fn schedule_round(
        &mut self,
        now: SimTime,
        queue: &mut EventQueue<Event>,
    ) -> Result<(), SchedError> {
        // Displaced services re-place before any job is considered: a
        // serving reservation outranks every job priority.
        for i in 0..self.services.len() {
            if self.services[i].slice.is_some() {
                continue;
            }
            let id = SERVICE_ID_BASE + i as u64;
            let chips = self.services[i].spec.chips;
            match self.allocator.allocate(id, chips)? {
                Some(slice) => {
                    let svc = &mut self.services[i];
                    svc.slice = Some(slice);
                    svc.migrations += 1;
                    self.count("service_migrations", 1);
                    self.span(
                        "service-migrate",
                        now,
                        now,
                        &[("service", i as f64), ("chips", f64::from(chips))],
                    );
                }
                None => self.try_preempt_for_service(i, now, queue)?,
            }
        }
        self.queue_order();
        let order: Vec<u64> = self.pending.clone();
        let mut blocked_shapes: Vec<u32> = Vec::new();
        let mut first_blocked: Option<u64> = None;
        for id in order {
            let run = &self.jobs[&id];
            if run.draining {
                continue;
            }
            let chips = run.spec.chips;
            if blocked_shapes.contains(&chips) {
                if first_blocked.is_none() {
                    first_blocked = Some(id);
                }
                continue;
            }
            match self.allocator.allocate(id, chips)? {
                Some(slice) => {
                    self.pending.retain(|&p| p != id);
                    self.dispatch(id, slice, now, queue)?;
                }
                None => {
                    blocked_shapes.push(chips);
                    if first_blocked.is_none() {
                        first_blocked = Some(id);
                    }
                }
            }
        }
        if let Some(id) = first_blocked {
            self.try_preempt_for(id, now, queue)?;
        }
        Ok(())
    }

    /// Dispatches `job` onto `slice`: restore its checkpoint if needed,
    /// then schedule its completion.
    fn dispatch(
        &mut self,
        job: u64,
        slice: Slice,
        now: SimTime,
        queue: &mut EventQueue<Event>,
    ) -> Result<(), SchedError> {
        let (kind, chips, enqueued_at, needs_restore, lost_state) = {
            let run = &self.jobs[&job];
            (
                run.spec.kind,
                run.spec.chips,
                run.enqueued_at,
                run.ckpt.is_some() && (run.preemptions > 0 || run.lost_state),
                run.lost_state,
            )
        };
        let wait = now - enqueued_at;
        self.observe("queue_wait_seconds", wait);
        self.span(
            "job-queued",
            enqueued_at,
            now,
            &[("job", job as f64), ("chips", f64::from(chips))],
        );

        let step_seconds = self.step_seconds(kind, chips)?;
        let mut compute_from = now;

        if needs_restore {
            let restore_cost = self.restore_job(job, slice.shape(), now)?;
            compute_from = now + restore_cost;
            // Preemption overhead per event: this restore plus the save
            // that evicted the job.
            if let Some(save_cost) = self.pending_restore_overhead.remove(&job) {
                let overhead = save_cost + restore_cost;
                self.preempt_overheads.push(overhead);
                self.observe("preemption_overhead_seconds", overhead);
            }
        } else if lost_state {
            // Fault-killed with no checkpoint: restart from scratch.
            let (spec, elems, lr) = {
                let run = &self.jobs[&job];
                (run.spec.clone(), self.config.state_elems, self.config.lr)
            };
            let run = self.jobs.get_mut(&job).expect("job exists");
            run.model = JobModel::fresh(&spec, elems, lr);
            run.steps_done = 0;
            run.lost_state = false;
        }

        let run = self.jobs.get_mut(&job).expect("job exists");
        run.queue_waits.push(wait);
        let remaining = run.spec.steps.saturating_sub(run.steps_done);
        self.next_token += 1;
        let token = self.next_token;
        let finish = compute_from + step_seconds * remaining as f64;
        self.running.insert(
            job,
            Running {
                slice,
                started: now,
                compute_from,
                step_seconds,
                token,
            },
        );
        queue.schedule(finish, Event::Completion { job, token });
        Ok(())
    }

    /// Completes `job` at `now`: advance its model through the steps it
    /// ran, bill its tenant, free the slice.
    fn complete_job(&mut self, job: u64, now: SimTime) -> Result<(), SchedError> {
        let running = self
            .running
            .remove(&job)
            .expect("completion for running job");
        let (spec, steps_from) = {
            let run = &self.jobs[&job];
            (run.spec.clone(), run.steps_done)
        };
        {
            let run = self.jobs.get_mut(&job).expect("job exists");
            for s in steps_from..spec.steps {
                run.model.advance(&spec, s)?;
            }
            run.steps_done = spec.steps;
            run.completed_at = Some(now);
        }
        *self.tenant_usage.entry(spec.tenant).or_insert(0.0) +=
            f64::from(spec.chips) * (now - running.started);
        self.allocator.free(job);
        self.count("jobs_completed", 1);
        self.span(
            "job-run",
            running.started,
            now,
            &[
                ("job", job as f64),
                ("chips", f64::from(spec.chips)),
                ("steps", spec.steps as f64),
            ],
        );
        Ok(())
    }

    /// Considers preempting lower-priority running jobs so the blocked
    /// `job` can fit. Victims checkpoint; their slices free when the
    /// slowest save completes.
    fn try_preempt_for(
        &mut self,
        job: u64,
        now: SimTime,
        queue: &mut EventQueue<Event>,
    ) -> Result<(), SchedError> {
        let (priority, chips) = {
            let run = &self.jobs[&job];
            (run.spec.priority, run.spec.chips)
        };
        // Victims: strictly lower-priority running jobs, cheapest
        // (latest-started, lowest-priority) first. Deterministic order.
        let mut candidates: Vec<u64> = self
            .running
            .keys()
            .copied()
            .filter(|id| self.jobs[id].spec.priority > priority)
            .collect();
        if candidates.is_empty() {
            return Ok(());
        }
        candidates.sort_by(|a, b| {
            let ja = &self.jobs[a];
            let jb = &self.jobs[b];
            jb.spec
                .priority
                .cmp(&ja.spec.priority)
                .then(self.running[b].started.cmp(&self.running[a].started))
                .then(b.cmp(a))
        });
        // Free victims hypothetically until the blocked job fits.
        let mut trial = self.allocator.clone();
        let mut victims = Vec::new();
        for v in candidates {
            trial.free(v);
            victims.push(v);
            if trial.allocate(job, chips)?.is_some() {
                // Enough space: preempt exactly this set.
                let mut latest = now;
                for &v in &victims {
                    let free_at = self.preempt(v, now)?;
                    latest = latest.max(free_at);
                }
                queue.schedule(latest, Event::SliceFreed { victims });
                return Ok(());
            }
        }
        Ok(())
    }

    /// Preempts running jobs so a displaced service can re-place. Every
    /// running job is a candidate (services outrank all priorities),
    /// cheapest victims first, exactly as [`PodScheduler::try_preempt_for`].
    fn try_preempt_for_service(
        &mut self,
        svc: usize,
        now: SimTime,
        queue: &mut EventQueue<Event>,
    ) -> Result<(), SchedError> {
        let id = SERVICE_ID_BASE + svc as u64;
        let chips = self.services[svc].spec.chips;
        let mut candidates: Vec<u64> = self.running.keys().copied().collect();
        candidates.sort_by(|a, b| {
            let ja = &self.jobs[a];
            let jb = &self.jobs[b];
            jb.spec
                .priority
                .cmp(&ja.spec.priority)
                .then(self.running[b].started.cmp(&self.running[a].started))
                .then(b.cmp(a))
        });
        let mut trial = self.allocator.clone();
        let mut victims = Vec::new();
        for v in candidates {
            trial.free(v);
            victims.push(v);
            if trial.allocate(id, chips)?.is_some() {
                let mut latest = now;
                for &v in &victims {
                    let free_at = self.preempt(v, now)?;
                    latest = latest.max(free_at);
                }
                queue.schedule(latest, Event::SliceFreed { victims });
                return Ok(());
            }
        }
        // Nothing (left) to preempt. Draining victims from an earlier
        // round will free space shortly; otherwise the mesh genuinely
        // cannot host the reservation any more.
        if self.jobs.values().any(|j| j.draining) {
            return Ok(());
        }
        Err(SchedError::ServiceUnplaceable {
            service: self.services[svc].spec.name.clone(),
            chips,
        })
    }

    /// Preempts running `job` at `now`: advance its model for the steps
    /// that completed, save a real sharded checkpoint on its slice, and
    /// mark it draining until the save finishes. Returns when its slice
    /// frees.
    fn preempt(&mut self, job: u64, now: SimTime) -> Result<SimTime, SchedError> {
        let running = self.running.remove(&job).expect("preempting a running job");
        let spec = self.jobs[&job].spec.clone();
        // Whole steps completed before the preemption hit.
        let ran = if now > running.compute_from {
            ((now - running.compute_from) / running.step_seconds).floor() as u64
        } else {
            0
        };
        let (bundle, steps_done) = {
            let run = self.jobs.get_mut(&job).expect("job exists");
            let target = (run.steps_done + ran).min(spec.steps);
            for s in run.steps_done..target {
                run.model.advance(&spec, s)?;
            }
            run.steps_done = target;
            (run.model.bundle(target)?, target)
        };
        let shape = running.slice.shape();
        let pcie = self.pcie;
        let ctx = self.shape_ctx(shape)?;
        let outcome = save_checkpoint(&mut ctx.net, &ctx.placement, &bundle, &pcie, now)?;
        let save_cost = outcome.finish - now;
        {
            let run = self.jobs.get_mut(&job).expect("job exists");
            run.ckpt = Some(outcome.checkpoint);
            run.draining = true;
            run.preemptions += 1;
        }
        *self.tenant_usage.entry(spec.tenant).or_insert(0.0) +=
            f64::from(spec.chips) * (now - running.started);
        self.preemptions += 1;
        self.save_seconds += save_cost;
        self.pending_restore_overhead.insert(job, save_cost);
        self.count("preemptions", 1);
        self.observe("preempt_save_seconds", save_cost);
        self.span(
            "job-preempt",
            running.started,
            outcome.finish,
            &[
                ("job", job as f64),
                ("steps_done", steps_done as f64),
                ("save_seconds", save_cost),
            ],
        );
        Ok(outcome.finish)
    }

    /// Restores `job`'s checkpoint onto a slice of `shape`, verifying the
    /// restored bundle is bit-identical to the saved state. Returns the
    /// restore's simulated cost in seconds.
    fn restore_job(
        &mut self,
        job: u64,
        shape: (u32, u32),
        now: SimTime,
    ) -> Result<f64, SchedError> {
        let ckpt = self.jobs[&job]
            .ckpt
            .clone()
            .expect("restore_job requires a checkpoint");
        let pcie = self.pcie;
        let ctx = self.shape_ctx(shape)?;
        let outcome = restore_checkpoint(&mut ctx.net, &ctx.placement, &ckpt, &pcie, now)?;
        let cost = outcome.finish - now;
        let run = self.jobs.get_mut(&job).expect("job exists");
        // The PR 4 guarantee, enforced per event: restoring onto the new
        // slice must reproduce the saved state bit for bit.
        let expected = run.model.bundle(run.steps_done)?;
        let identical = outcome.bundle == expected || run.lost_state;
        run.model.load(&outcome.bundle)?;
        run.steps_done = outcome.bundle.step;
        run.lost_state = false;
        if !identical {
            self.restores_identical = false;
            return Err(SchedError::RestoreMismatch { job });
        }
        self.restores += 1;
        self.restore_seconds += cost;
        self.count("restores", 1);
        self.observe("restore_seconds", cost);
        Ok(cost)
    }

    /// A chip dies at `now`: the allocator marks it dead; the occupying
    /// job (if any) is killed back to its last checkpoint and requeued.
    fn handle_fault(&mut self, chip: ChipId, now: SimTime) -> Result<(), SchedError> {
        let victim = self.allocator.mark_dead(chip);
        self.count("chip_faults", 1);
        let Some(job) = victim else {
            return Ok(());
        };
        if job >= SERVICE_ID_BASE {
            // A service lost a chip: release the rest of its slice and
            // mark it displaced; the next scheduling round re-places it
            // (preempting training work if the mesh is full).
            let svc = (job - SERVICE_ID_BASE) as usize;
            self.allocator.free(job);
            self.services[svc].slice = None;
            self.count("service_faults", 1);
            self.span(
                "service-fault",
                now,
                now,
                &[("service", svc as f64), ("chip", chip.index() as f64)],
            );
            return Ok(());
        }
        // In-flight progress since the last checkpoint is lost.
        if let Some(running) = self.running.remove(&job) {
            let spec = self.jobs[&job].spec.clone();
            *self.tenant_usage.entry(spec.tenant).or_insert(0.0) +=
                f64::from(spec.chips) * (now - running.started);
            self.span(
                "job-fault-kill",
                running.started,
                now,
                &[("job", job as f64), ("chip", chip.index() as f64)],
            );
        }
        self.allocator.free(job);
        let run = self.jobs.get_mut(&job).expect("job exists");
        if run.completed_at.is_some() {
            return Ok(());
        }
        run.lost_state = true;
        // Roll the step counter back to the last durable state.
        run.steps_done = run.ckpt.as_ref().map_or(0, |c| c.manifest.step);
        run.enqueued_at = now;
        run.draining = false;
        if !self.pending.contains(&job) {
            self.pending.push(job);
        }
        self.fault_kills += 1;
        self.count("fault_kills", 1);
        Ok(())
    }
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multipod_simnet::SimTime;

    fn small_config(jobs: u32, seed: u64) -> SchedConfig {
        SchedConfig {
            mesh: MultipodConfig::mesh(16, 8, true),
            arrivals: ArrivalConfig {
                jobs,
                seed,
                mean_interarrival_seconds: 0.01,
                tenants: 4,
            },
            services: Vec::new(),
            state_elems: 512,
            lr: 0.05,
        }
    }

    /// Shrinks the canned stream's slice sizes to the test mesh.
    fn shrunk_stream_config(jobs: u32, seed: u64) -> SchedConfig {
        let mut c = small_config(jobs, seed);
        c.arrivals.mean_interarrival_seconds = 0.005;
        c
    }

    #[test]
    fn campaign_completes_every_job_that_fits() {
        // 16x8 = 128 chips; the heavy stream asks for up to 512-chip
        // BERT slices, which can never fit — those surface as typed
        // errors up front.
        let mut sched = PodScheduler::new(shrunk_stream_config(50, 3));
        match sched.run() {
            Err(SchedError::UnplaceableJob { chips, .. }) => assert!(chips > 128),
            other => panic!("expected UnplaceableJob, got {:?}", other.map(|r| r.jobs)),
        }
    }

    fn fitted_config(jobs: u32, seed: u64) -> SchedConfig {
        SchedConfig {
            mesh: MultipodConfig::mesh(32, 32, true),
            arrivals: ArrivalConfig {
                jobs,
                seed,
                mean_interarrival_seconds: 0.004,
                tenants: 4,
            },
            services: Vec::new(),
            state_elems: 512,
            lr: 0.05,
        }
    }

    #[test]
    fn campaign_runs_and_reports() {
        let mut sched = PodScheduler::new(fitted_config(60, 11));
        let report = sched.run().expect("campaign");
        assert_eq!(report.jobs, 60);
        assert_eq!(report.completed, 60, "all jobs fit a 1024-chip mesh");
        assert!(report.makespan_seconds > 0.0);
        assert!(report.mean_utilization > 0.0 && report.mean_utilization <= 1.0);
        assert!(report.restores_bit_identical);
        assert_eq!(
            report.queue_wait.count,
            60 + report.preemptions + report.fault_kills
        );
    }

    #[test]
    fn campaign_is_deterministic() {
        let run = || {
            let mut sched = PodScheduler::new(fitted_config(60, 11));
            sched.run().expect("campaign")
        };
        assert_eq!(run(), run());
    }

    fn with_service(mut c: SchedConfig, name: &str, chips: u32) -> SchedConfig {
        c.services.push(crate::ServiceSpec {
            name: name.to_string(),
            chips,
        });
        c
    }

    #[test]
    fn service_reservation_holds_chips_for_the_whole_campaign() {
        let config = with_service(fitted_config(60, 11), "dlrm-serve", 256);
        let mut sched = PodScheduler::new(config);
        let report = sched.run().expect("campaign");
        assert_eq!(report.services.len(), 1);
        let svc = &report.services[0];
        assert_eq!(svc.name, "dlrm-serve");
        assert_eq!(svc.chips, 256);
        assert_eq!(svc.shape.0 * svc.shape.1, 256, "service is resident");
        assert_eq!(svc.migrations, 0, "no faults, no migrations");
        // Training still completes around the reservation.
        assert_eq!(report.completed, 60);
        assert!(report.restores_bit_identical);
    }

    #[test]
    fn oversized_service_is_a_typed_error() {
        let config = with_service(fitted_config(10, 1), "too-big", 2048);
        let mut sched = PodScheduler::new(config);
        assert!(matches!(
            sched.run(),
            Err(SchedError::ServiceUnplaceable { chips: 2048, .. })
        ));
    }

    #[test]
    fn service_migrates_off_a_dead_chip() {
        // The service lands most-square-first at (0,0) as 16x16, so chip
        // (0,0) is inside its slice.
        let config = with_service(fitted_config(40, 5), "dlrm-serve", 256);
        let plan = FaultPlan::new().chip_down(SimTime::from_seconds(0.05), ChipId(0));
        let mut sched = PodScheduler::new(config);
        let report = sched.run_with_faults(&plan).expect("campaign");
        let svc = &report.services[0];
        assert_eq!(svc.migrations, 1, "the fault displaced the service once");
        assert_eq!(svc.shape.0 * svc.shape.1, 256, "re-placed at full size");
        assert!(report.restores_bit_identical);
    }

    #[test]
    fn campaign_with_service_is_deterministic() {
        let run = || {
            let config = with_service(fitted_config(60, 11), "dlrm-serve", 128);
            let mut sched = PodScheduler::new(config);
            sched.run().expect("campaign")
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn chip_fault_kills_and_recovers_the_job() {
        let config = fitted_config(40, 5);
        let mut clean = PodScheduler::new(config.clone());
        let clean_report = clean.run().expect("clean campaign");
        let plan = FaultPlan::new().chip_down(SimTime::from_seconds(0.01), ChipId(33));
        let mut faulty = PodScheduler::new(config);
        let report = faulty.run_with_faults(&plan).expect("faulty campaign");
        assert_eq!(report.completed, clean_report.completed);
        assert!(report.restores_bit_identical);
        // The mesh shrank, so utilization accounting saw 1023 live chips
        // after the fault.
        assert!(report.makespan_seconds >= clean_report.makespan_seconds);
    }
}
