//! Multi-tenant pod scheduling over the simulated multipod.
//!
//! Google's TPU pods are multiplexed across many training and serving
//! jobs at once; the paper's concurrency results implicitly assume a
//! scheduler that can hand each job a rectangular slice of the mesh and
//! keep the pod busy. This crate models that layer end to end:
//!
//! * [`SliceAllocator`] — deterministic buddy-style first-fit allocation
//!   of rectangular power-of-two slices over the mesh's *live* chips
//!   (dead chips from the fault layer poison rectangles).
//! * [`JobSpec`] / [`arrival_stream`] — a seeded heterogeneous job
//!   stream: BERT, ResNet-50 and DLRM training at MLPerf slice sizes,
//!   plus a heavy tail of small high-priority eval jobs.
//! * [`PodScheduler`] — gang scheduling under priorities and fair-share
//!   tenant accounting, with preemption implemented as a *real* sharded
//!   checkpoint save on the outgoing slice and a bit-identical elastic
//!   restore when the job is re-dispatched (possibly onto a different
//!   slice shape), and chip-loss faults that kill jobs back to their
//!   last checkpoint.
//! * [`SchedReport`] — utilization, queue-wait and preemption-overhead
//!   distributions for a whole campaign, deterministic across reruns.
//!
//! The `repro_sched` bench drives a thousands-of-jobs campaign on the
//! 128×32 mesh and gates mean utilization and byte-identical reruns in
//! CI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod job;
mod sched;
mod slice;

pub use error::SchedError;
pub use job::{arrival_stream, ArrivalConfig, JobKind, JobSpec, ServiceSpec};
pub use multipod_telemetry::DistSummary;
pub use sched::{KindStats, PodScheduler, SchedConfig, SchedReport, ServiceStats};
pub use slice::{Slice, SliceAllocator};
