//! Per-host embedding caches for the serving path.
//!
//! An online DLRM replica keeps the hottest rows of the partitioned
//! tables in host memory so that a skewed query stream mostly skips the
//! interconnect: a hit serves the row from the home chip's cache, a miss
//! pays the all-to-all to the owning chip and installs the row. The cache
//! is a true LRU (exact recency order), which gives it the inclusion
//! property — a larger cache's hit set contains a smaller cache's on the
//! same access sequence — so hit rate is monotone in capacity.

use std::collections::HashMap;

const NIL: usize = usize::MAX;

/// One arena slot of the recency list.
#[derive(Clone, Debug)]
struct Node {
    key: (usize, usize),
    prev: usize,
    next: usize,
}

/// An exact-LRU cache over `(table, row)` keys.
///
/// O(1) access and insert: a `HashMap` finds the arena slot, a doubly
/// linked list threaded through the arena keeps recency order.
#[derive(Clone, Debug, Default)]
pub struct LruCache {
    capacity: usize,
    map: HashMap<(usize, usize), usize>,
    nodes: Vec<Node>,
    /// Most recently used.
    head: usize,
    /// Least recently used (the eviction victim).
    tail: usize,
    hits: u64,
    misses: u64,
}

impl LruCache {
    /// A cache holding at most `capacity` rows. Zero capacity disables
    /// caching (every access misses and nothing is stored).
    pub fn new(capacity: usize) -> LruCache {
        LruCache {
            capacity,
            map: HashMap::new(),
            nodes: Vec::with_capacity(capacity.min(1 << 20)),
            head: NIL,
            tail: NIL,
            hits: 0,
            misses: 0,
        }
    }

    /// Rows currently cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no rows.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Hits recorded so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses recorded so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Accesses `(table, row)`: returns `true` on a hit (and refreshes
    /// recency); on a miss installs the row, evicting the least recently
    /// used row if the cache is full.
    pub fn access(&mut self, table: usize, row: usize) -> bool {
        let key = (table, row);
        if let Some(&slot) = self.map.get(&key) {
            self.hits += 1;
            self.unlink(slot);
            self.push_front(slot);
            return true;
        }
        self.misses += 1;
        if self.capacity == 0 {
            return false;
        }
        let slot = if self.map.len() == self.capacity {
            // Evict the tail and reuse its slot.
            let victim = self.tail;
            self.map.remove(&self.nodes[victim].key);
            self.unlink(victim);
            self.nodes[victim].key = key;
            victim
        } else {
            self.nodes.push(Node {
                key,
                prev: NIL,
                next: NIL,
            });
            self.nodes.len() - 1
        };
        self.push_front(slot);
        self.map.insert(key, slot);
        false
    }

    fn unlink(&mut self, slot: usize) {
        let Node { prev, next, .. } = self.nodes[slot];
        if prev != NIL {
            self.nodes[prev].next = next;
        } else if self.head == slot {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else if self.tail == slot {
            self.tail = prev;
        }
        self.nodes[slot].prev = NIL;
        self.nodes[slot].next = NIL;
    }

    fn push_front(&mut self, slot: usize) {
        self.nodes[slot].prev = NIL;
        self.nodes[slot].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }
}

/// One LRU per home chip: each serving host caches the remote rows its
/// own samples fetch.
#[derive(Clone, Debug)]
pub struct EmbeddingCache {
    per_chip: Vec<LruCache>,
}

impl EmbeddingCache {
    /// A cache of `rows_per_chip` rows on each of `chips` hosts.
    pub fn new(chips: usize, rows_per_chip: usize) -> EmbeddingCache {
        EmbeddingCache {
            per_chip: (0..chips).map(|_| LruCache::new(rows_per_chip)).collect(),
        }
    }

    /// Accesses `(table, row)` through chip `chip`'s cache.
    pub fn access(&mut self, chip: usize, table: usize, row: usize) -> bool {
        self.per_chip[chip].access(table, row)
    }

    /// Total hits across all chips.
    pub fn hits(&self) -> u64 {
        self.per_chip.iter().map(LruCache::hits).sum()
    }

    /// Total misses across all chips.
    pub fn misses(&self) -> u64 {
        self.per_chip.iter().map(LruCache::misses).sum()
    }

    /// Hit rate over every access so far (0 when nothing was accessed).
    pub fn hit_rate(&self) -> f64 {
        let hits = self.hits();
        let total = hits + self.misses();
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn repeat_access_hits() {
        let mut c = LruCache::new(4);
        assert!(!c.access(0, 7));
        assert!(c.access(0, 7));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn eviction_removes_least_recently_used() {
        let mut c = LruCache::new(2);
        c.access(0, 1);
        c.access(0, 2);
        assert!(c.access(0, 1)); // refresh 1 → LRU is now 2
        c.access(0, 3); // evicts 2
        assert!(c.access(0, 1));
        assert!(c.access(0, 3));
        assert!(!c.access(0, 2));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn zero_capacity_stores_nothing() {
        let mut c = LruCache::new(0);
        assert!(!c.access(0, 1));
        assert!(!c.access(0, 1));
        assert_eq!(c.len(), 0);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn tables_do_not_collide() {
        let mut c = LruCache::new(4);
        c.access(0, 5);
        assert!(!c.access(1, 5));
        assert!(c.access(0, 5));
        assert!(c.access(1, 5));
    }

    #[test]
    fn inclusion_makes_hit_rate_monotone_in_capacity() {
        let mut rng = SmallRng::seed_from_u64(11);
        let accesses: Vec<(usize, usize)> = (0..4000)
            .map(|_| {
                let u: f64 = rng.gen_range(0.0..1.0);
                (rng.gen_range(0..4usize), (1024.0 * u.powi(3)) as usize)
            })
            .collect();
        let mut prev = 0u64;
        for cap in [0usize, 16, 64, 256, 1024] {
            let mut c = LruCache::new(cap);
            for &(t, r) in &accesses {
                c.access(t, r);
            }
            assert!(
                c.hits() >= prev,
                "capacity {cap} regressed hits: {} < {prev}",
                c.hits()
            );
            prev = c.hits();
        }
        assert!(prev > 0, "largest cache should hit on a skewed stream");
    }

    #[test]
    fn per_chip_caches_are_independent() {
        let mut c = EmbeddingCache::new(2, 4);
        c.access(0, 0, 9);
        assert!(!c.access(1, 0, 9));
        assert!(c.access(0, 0, 9));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 2);
        assert!((c.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_cache_reports_zero_hit_rate() {
        let c = EmbeddingCache::new(4, 16);
        assert_eq!(c.hit_rate(), 0.0);
    }
}
