//! Distributed embedding lookup over the simulated mesh.

use std::collections::BTreeMap;

use multipod_simnet::{Network, SimTime};
use multipod_tensor::{Shape, Tensor, TensorRng};
use multipod_topology::ChipId;

use crate::{EmbeddingCache, EmbeddingError, Placement, TablePlacement};

/// The result of one distributed lookup step.
#[derive(Clone, Debug)]
pub struct LookupOutcome {
    /// Per-sample concatenated embeddings, `[batch × (tables · dim)]`.
    pub embeddings: Tensor,
    /// Completion time of the all-to-all exchange.
    pub time: SimTime,
    /// Remote rows fetched (crossed the mesh).
    pub remote_rows: usize,
    /// Local rows (replicated tables or locally owned rows).
    pub local_rows: usize,
    /// Remote rows served from the home chip's cache (no mesh traffic).
    pub cache_hits: usize,
}

/// Embedding tables distributed across the chips of a mesh.
///
/// Each partitioned table's rows live on their owning chip; a batch lookup
/// routes each remote request to the owner and the responses back — the
/// all-to-all the paper's DLRM step pays on both the forward lookup and
/// the backward scatter-update.
#[derive(Debug)]
pub struct ShardedEmbedding {
    placement: Placement,
    /// `tables[t]` holds the *full* table (storage is simulated by the
    /// placement; numerics use the logical values).
    tables: Vec<Tensor>,
    dim: usize,
}

impl ShardedEmbedding {
    /// Initializes tables deterministically from a seed.
    ///
    /// # Errors
    ///
    /// [`EmbeddingError::DimMismatch`] when tables disagree on dimension
    /// (the DLRM layout requires one uniform embedding dim).
    pub fn init(placement: Placement, seed: u64) -> Result<ShardedEmbedding, EmbeddingError> {
        let dim = placement.spec(0).dim;
        let mut rng = TensorRng::seed(seed);
        let mut tables = Vec::with_capacity(placement.num_tables());
        for t in 0..placement.num_tables() {
            let spec = placement.spec(t);
            if spec.dim != dim {
                return Err(EmbeddingError::DimMismatch {
                    table: t,
                    dim: spec.dim,
                    expected: dim,
                });
            }
            tables.push(rng.uniform(Shape::of(&[spec.rows, spec.dim]), -0.1, 0.1));
        }
        Ok(ShardedEmbedding {
            placement,
            tables,
            dim,
        })
    }

    /// The placement in force.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// One row of one table (test/inspection helper).
    ///
    /// # Errors
    ///
    /// [`EmbeddingError::TableOutOfRange`] / [`EmbeddingError::RowOutOfRange`]
    /// when the request falls outside the placement.
    pub fn row(&self, table: usize, row: usize) -> Result<Tensor, EmbeddingError> {
        if table >= self.tables.len() {
            return Err(EmbeddingError::TableOutOfRange {
                table,
                tables: self.tables.len(),
            });
        }
        let rows = self.placement.spec(table).rows;
        if row >= rows {
            return Err(EmbeddingError::RowOutOfRange { table, row, rows });
        }
        let dim = self.dim;
        let data = self.tables[table].data()[row * dim..(row + 1) * dim].to_vec();
        Ok(Tensor::new(Shape::vector(dim), data))
    }

    /// Executes a batch lookup: `indices[sample][table]` selects one row
    /// per table per sample. Samples are owned by chips round-robin
    /// (`sample % chips`); remote rows generate request/response traffic
    /// timed on the network.
    ///
    /// # Errors
    ///
    /// [`EmbeddingError::ArityMismatch`] when a sample does not carry one
    /// index per table, [`EmbeddingError::RowOutOfRange`] when an index
    /// falls outside its table, and [`EmbeddingError::Network`] when a
    /// response message cannot be routed.
    pub fn lookup(
        &self,
        net: &mut Network,
        indices: &[Vec<usize>],
        start: SimTime,
    ) -> Result<LookupOutcome, EmbeddingError> {
        self.lookup_impl(net, indices, start, None)
    }

    /// Like [`ShardedEmbedding::lookup`], but consults a per-home-chip
    /// [`EmbeddingCache`] first: a remote row found in its sample's home
    /// cache is served locally (counted in
    /// [`LookupOutcome::cache_hits`]) and generates no mesh traffic; a
    /// miss pays the all-to-all and installs the row. This is the serving
    /// path — training lookups bypass the cache because scatter-updates
    /// would invalidate it every step.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ShardedEmbedding::lookup`].
    pub fn lookup_cached(
        &self,
        net: &mut Network,
        indices: &[Vec<usize>],
        start: SimTime,
        cache: &mut EmbeddingCache,
    ) -> Result<LookupOutcome, EmbeddingError> {
        self.lookup_impl(net, indices, start, Some(cache))
    }

    fn lookup_impl(
        &self,
        net: &mut Network,
        indices: &[Vec<usize>],
        start: SimTime,
        mut cache: Option<&mut EmbeddingCache>,
    ) -> Result<LookupOutcome, EmbeddingError> {
        let chips: Vec<ChipId> = net.mesh().chips().collect();
        let n_chips = chips.len();
        let batch = indices.len();
        let tables = self.placement.num_tables();
        let row_bytes = (self.dim * 4) as u64;

        // Gather the numeric result and the per-(src,dst) traffic matrix.
        let mut out = Vec::with_capacity(batch * tables * self.dim);
        // BTreeMap so the all-to-all issues in a deterministic order —
        // contention resolution, and thus timing, depends on it.
        let mut traffic: BTreeMap<(usize, usize), u64> = BTreeMap::new();
        let mut remote_rows = 0usize;
        let mut local_rows = 0usize;
        let mut cache_hits = 0usize;
        for (sample, row_ids) in indices.iter().enumerate() {
            if row_ids.len() != tables {
                return Err(EmbeddingError::ArityMismatch {
                    sample,
                    got: row_ids.len(),
                    tables,
                });
            }
            let home = sample % n_chips;
            for (t, &row) in row_ids.iter().enumerate() {
                let spec = self.placement.spec(t);
                if row >= spec.rows {
                    return Err(EmbeddingError::RowOutOfRange {
                        table: t,
                        row,
                        rows: spec.rows,
                    });
                }
                out.extend_from_slice(&self.tables[t].data()[row * self.dim..(row + 1) * self.dim]);
                match self.placement_kind(t) {
                    TablePlacement::Replicated => local_rows += 1,
                    TablePlacement::RowPartitioned => {
                        let owner = self.placement.owner_of(t, row);
                        if owner == home {
                            local_rows += 1;
                        } else if let Some(c) = cache.as_deref_mut() {
                            if c.access(home, t, row) {
                                cache_hits += 1;
                            } else {
                                remote_rows += 1;
                                *traffic.entry((owner, home)).or_insert(0) += row_bytes;
                            }
                        } else {
                            remote_rows += 1;
                            *traffic.entry((owner, home)).or_insert(0) += row_bytes;
                        }
                    }
                }
            }
        }

        // Time the response traffic as one bulk message per (owner, home)
        // pair — the batched all-to-all of the optimized input path.
        let messages: Vec<(ChipId, ChipId, u64)> = traffic
            .into_iter()
            .map(|((src, dst), bytes)| (chips[src], chips[dst], bytes))
            .collect();
        let time = if messages.is_empty() {
            start
        } else {
            net.parallel_transfers(&messages, start)?
        };
        Ok(LookupOutcome {
            embeddings: Tensor::new(Shape::of(&[batch, tables * self.dim]), out),
            time,
            remote_rows,
            local_rows,
            cache_hits,
        })
    }

    /// Applies a sparse gradient update: each looked-up row receives
    /// `-lr · g` for its sample's gradient slice. The backward all-to-all
    /// mirrors the forward traffic (timed by the caller via
    /// [`ShardedEmbedding::lookup`]'s outcome, as the paper's step does).
    ///
    /// # Errors
    ///
    /// [`EmbeddingError::GradShapeMismatch`] when the gradient tensor's
    /// shape disagrees with the lookup layout.
    pub fn scatter_update(
        &mut self,
        indices: &[Vec<usize>],
        grads: &Tensor,
        lr: f32,
    ) -> Result<(), EmbeddingError> {
        let tables = self.placement.num_tables();
        let dim = self.dim;
        if grads.shape().dims() != [indices.len(), tables * dim] {
            return Err(EmbeddingError::GradShapeMismatch {
                got: grads.shape().dims().to_vec(),
                expected: vec![indices.len(), tables * dim],
            });
        }
        for (sample, row_ids) in indices.iter().enumerate() {
            for (t, &row) in row_ids.iter().enumerate() {
                let g = &grads.data()
                    [sample * tables * dim + t * dim..sample * tables * dim + (t + 1) * dim];
                let table = &mut self.tables[t];
                let base = row * dim;
                for (i, &gv) in g.iter().enumerate() {
                    table.data_mut()[base + i] -= lr * gv;
                }
            }
        }
        Ok(())
    }

    fn placement_kind(&self, t: usize) -> TablePlacement {
        if self.placement.is_replicated(t) {
            TablePlacement::Replicated
        } else {
            TablePlacement::RowPartitioned
        }
    }
}

/// On-device evaluation accumulator (§4.6: "we perform multiple inference
/// steps on device and accumulate them" instead of paying a host
/// round-trip per step).
#[derive(Clone, Debug, Default)]
pub struct EvalAccumulator {
    predictions: Vec<f32>,
    labels: Vec<bool>,
    host_transfers: usize,
}

impl EvalAccumulator {
    /// An empty accumulator.
    pub fn new() -> EvalAccumulator {
        EvalAccumulator::default()
    }

    /// Accumulates one on-device inference step (no host traffic).
    pub fn accumulate(&mut self, predictions: &[f32], labels: &[bool]) {
        assert_eq!(predictions.len(), labels.len());
        self.predictions.extend_from_slice(predictions);
        self.labels.extend_from_slice(labels);
    }

    /// Drains the accumulated results to the host (one transfer for many
    /// steps).
    pub fn drain_to_host(&mut self) -> (Vec<f32>, Vec<bool>) {
        self.host_transfers += 1;
        (
            std::mem::take(&mut self.predictions),
            std::mem::take(&mut self.labels),
        )
    }

    /// Host round-trips paid so far.
    pub fn host_transfers(&self) -> usize {
        self.host_transfers
    }

    /// Samples currently buffered on device.
    pub fn buffered(&self) -> usize {
        self.labels.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EmbeddingSpec;
    use multipod_simnet::NetworkConfig;
    use multipod_topology::{Multipod, MultipodConfig};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn setup() -> (Network, ShardedEmbedding) {
        let mesh = Multipod::new(MultipodConfig::mesh(4, 1, false));
        let net = Network::new(mesh, NetworkConfig::tpu_v3());
        let specs = vec![
            EmbeddingSpec { rows: 16, dim: 4 },   // replicated
            EmbeddingSpec { rows: 4096, dim: 4 }, // partitioned
        ];
        let placement = Placement::plan(&specs, 4, 1024);
        (net, ShardedEmbedding::init(placement, 99).unwrap())
    }

    #[test]
    fn lookup_returns_the_right_rows() {
        let (mut net, emb) = setup();
        let indices = vec![vec![3, 100], vec![5, 2000]];
        let out = emb.lookup(&mut net, &indices, SimTime::ZERO).unwrap();
        assert_eq!(out.embeddings.shape().dims(), &[2, 8]);
        assert_eq!(&out.embeddings.data()[0..4], emb.row(0, 3).unwrap().data());
        assert_eq!(
            &out.embeddings.data()[4..8],
            emb.row(1, 100).unwrap().data()
        );
        assert_eq!(
            &out.embeddings.data()[12..16],
            emb.row(1, 2000).unwrap().data()
        );
    }

    #[test]
    fn replicated_tables_never_cross_the_mesh() {
        let (mut net, emb) = setup();
        let indices = vec![vec![0, 0]; 8]; // table-1 row 0 lives on chip 0
        let out = emb.lookup(&mut net, &indices, SimTime::ZERO).unwrap();
        // Table 0 is replicated (8 local); table-1 row 0 is local only for
        // samples homed on chip 0 (2 of 8 under round-robin).
        assert_eq!(out.local_rows, 8 + 2);
        assert_eq!(out.remote_rows, 6);
        assert!(out.time > SimTime::ZERO);
    }

    #[test]
    fn remote_traffic_takes_time_and_scales_with_batch() {
        let (mut net, emb) = setup();
        let mut rng = SmallRng::seed_from_u64(5);
        let small: Vec<Vec<usize>> = (0..8)
            .map(|_| vec![rng.gen_range(0..16), rng.gen_range(0..4096)])
            .collect();
        let large: Vec<Vec<usize>> = (0..512)
            .map(|_| vec![rng.gen_range(0..16), rng.gen_range(0..4096)])
            .collect();
        let t_small = emb.lookup(&mut net, &small, SimTime::ZERO).unwrap();
        net.reset();
        let t_large = emb.lookup(&mut net, &large, SimTime::ZERO).unwrap();
        assert!(t_large.remote_rows > 10 * t_small.remote_rows);
        assert!(t_large.time >= t_small.time);
    }

    #[test]
    fn cached_lookup_skips_the_mesh_on_repeat() {
        let (mut net, emb) = setup();
        let mut cache = EmbeddingCache::new(4, 64);
        let indices = vec![vec![0, 0]; 8]; // table-1 row 0: remote for 6/8 homes
        let cold = emb
            .lookup_cached(&mut net, &indices, SimTime::ZERO, &mut cache)
            .unwrap();
        // Homes 1..3 each carry two samples: the first misses and installs
        // the row, the second hits within the same batch.
        assert_eq!(cold.cache_hits, 3);
        assert_eq!(cold.remote_rows, 3);
        assert!(cold.time > SimTime::ZERO);
        net.reset();
        let warm = emb
            .lookup_cached(&mut net, &indices, SimTime::ZERO, &mut cache)
            .unwrap();
        // Every previously remote row now hits its home cache: no traffic.
        assert_eq!(warm.cache_hits, 6);
        assert_eq!(warm.remote_rows, 0);
        assert_eq!(warm.time, SimTime::ZERO);
        // Numerics are unchanged by caching.
        assert_eq!(warm.embeddings, cold.embeddings);
        assert!(cache.hit_rate() > 0.0);
    }

    #[test]
    fn uncached_lookup_reports_zero_hits() {
        let (mut net, emb) = setup();
        let out = emb.lookup(&mut net, &[vec![0, 0]], SimTime::ZERO).unwrap();
        assert_eq!(out.cache_hits, 0);
    }

    #[test]
    fn scatter_update_moves_only_touched_rows() {
        let (mut net, mut emb) = setup();
        let indices = vec![vec![3usize, 100]];
        let before_touched = emb.row(1, 100).unwrap();
        let before_untouched = emb.row(1, 101).unwrap();
        let out = emb.lookup(&mut net, &indices, SimTime::ZERO).unwrap();
        let grads = Tensor::fill(out.embeddings.shape().clone(), 1.0);
        emb.scatter_update(&indices, &grads, 0.5).unwrap();
        let after = emb.row(1, 100).unwrap();
        let expect = before_touched.map(|v| v - 0.5);
        assert!(after.max_abs_diff(&expect) < 1e-6);
        assert_eq!(emb.row(1, 101).unwrap(), before_untouched);
    }

    #[test]
    fn training_reduces_loss_on_a_toy_task() {
        // One-table logistic-ish regression: row embeddings should move
        // toward their target labels.
        let mesh = Multipod::new(MultipodConfig::mesh(2, 1, false));
        let mut net = Network::new(mesh, NetworkConfig::tpu_v3());
        let placement = Placement::plan(&[EmbeddingSpec { rows: 32, dim: 1 }], 2, 0);
        let mut emb = ShardedEmbedding::init(placement, 1).unwrap();
        let mut rng = SmallRng::seed_from_u64(2);
        let targets: Vec<f32> = (0..32).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let loss = |emb: &ShardedEmbedding| -> f32 {
            (0..32)
                .map(|r| (emb.row(0, r).unwrap().data()[0] - targets[r]).powi(2))
                .sum()
        };
        let initial = loss(&emb);
        for _ in 0..200 {
            let indices: Vec<Vec<usize>> = (0..32).map(|r| vec![r]).collect();
            let out = emb.lookup(&mut net, &indices, SimTime::ZERO).unwrap();
            let grads: Vec<f32> = out
                .embeddings
                .data()
                .iter()
                .enumerate()
                .map(|(r, &v)| 2.0 * (v - targets[r]))
                .collect();
            let g = Tensor::new(out.embeddings.shape().clone(), grads);
            emb.scatter_update(&indices, &g, 0.05).unwrap();
            net.reset();
        }
        assert!(loss(&emb) < 0.01 * initial, "loss did not drop");
    }

    #[test]
    fn bad_requests_are_typed_errors() {
        let (mut net, mut emb) = setup();
        let err = emb.lookup(&mut net, &[vec![0usize]], SimTime::ZERO);
        assert!(matches!(
            err,
            Err(EmbeddingError::ArityMismatch {
                sample: 0,
                got: 1,
                tables: 2
            })
        ));
        let err = emb.lookup(&mut net, &[vec![0usize, 5000]], SimTime::ZERO);
        assert!(matches!(
            err,
            Err(EmbeddingError::RowOutOfRange {
                table: 1,
                row: 5000,
                rows: 4096
            })
        ));
        assert!(matches!(
            emb.row(7, 0),
            Err(EmbeddingError::TableOutOfRange { table: 7, .. })
        ));
        let grads = Tensor::zeros(Shape::of(&[2, 3]));
        let err = emb.scatter_update(&[vec![0, 0], vec![0, 0]], &grads, 0.1);
        assert!(matches!(err, Err(EmbeddingError::GradShapeMismatch { .. })));
    }

    #[test]
    fn eval_accumulator_amortizes_host_transfers() {
        let mut acc = EvalAccumulator::new();
        for step in 0..64 {
            let preds = vec![step as f32; 128];
            let labels = vec![step % 2 == 0; 128];
            acc.accumulate(&preds, &labels);
        }
        assert_eq!(acc.buffered(), 64 * 128);
        assert_eq!(acc.host_transfers(), 0);
        let (p, l) = acc.drain_to_host();
        assert_eq!(p.len(), 64 * 128);
        assert_eq!(l.len(), 64 * 128);
        assert_eq!(acc.host_transfers(), 1);
        assert_eq!(acc.buffered(), 0);
    }
}
