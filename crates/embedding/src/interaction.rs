//! The masked feature self-interaction (§4.6).
//!
//! DLRM crosses its features by taking all pairwise dot products of the
//! per-feature embedding vectors. The reference implementation *gathers*
//! the strictly-lower-triangular entries of the interaction matrix to
//! drop the redundant (symmetric and diagonal) ones; gathers are slow on
//! TPUs, so the paper instead "masks the redundant features with zeros
//! and modifies the downstream fully connected layers to ignore the null
//! features during initialization".

use multipod_tensor::{Shape, Tensor};

use crate::EmbeddingError;

/// The self-interaction output in both layouts.
#[derive(Clone, Debug, PartialEq)]
pub struct InteractionOutput {
    /// Gather layout: the `f·(f−1)/2` strictly-lower-triangular products
    /// per sample (reference semantics).
    pub gathered: Tensor,
    /// Masked layout: the full `f·f` matrix per sample with redundant
    /// entries zeroed (the TPU-friendly layout).
    pub masked: Tensor,
}

/// Computes the pairwise feature interactions for a batch.
///
/// `features` is `[batch × (tables · dim)]` as produced by the embedding
/// lookup; it is interpreted as `tables` vectors of length `dim` per
/// sample.
///
/// # Errors
///
/// [`EmbeddingError::IndivisibleWidth`] when the feature width is not
/// divisible by `dim`.
pub fn masked_self_interaction(
    features: &Tensor,
    dim: usize,
) -> Result<InteractionOutput, EmbeddingError> {
    let batch = features.shape().dim(0);
    let width = features.shape().dim(1);
    if dim == 0 || !width.is_multiple_of(dim) {
        return Err(EmbeddingError::IndivisibleWidth { width, dim });
    }
    let f = width / dim;
    let tri = f * (f - 1) / 2;
    let mut gathered = Vec::with_capacity(batch * tri);
    let mut masked = vec![0.0f32; batch * f * f];
    for b in 0..batch {
        let row = &features.data()[b * width..(b + 1) * width];
        for i in 0..f {
            for j in 0..f {
                let dot: f32 = (0..dim).map(|k| row[i * dim + k] * row[j * dim + k]).sum();
                if j < i {
                    gathered.push(dot);
                    masked[b * f * f + i * f + j] = dot;
                }
                // Diagonal and upper triangle stay zero in the masked
                // layout (the "null features" downstream layers ignore).
            }
        }
    }
    Ok(InteractionOutput {
        gathered: Tensor::new(Shape::of(&[batch, tri]), gathered),
        masked: Tensor::new(Shape::of(&[batch, f * f]), masked),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use multipod_tensor::TensorRng;

    #[test]
    fn layouts_carry_the_same_information() {
        let mut rng = TensorRng::seed(4);
        let feats = rng.uniform(Shape::of(&[3, 4 * 2]), -1.0, 1.0); // 4 tables, dim 2
        let out = masked_self_interaction(&feats, 2).unwrap();
        assert_eq!(out.gathered.shape().dims(), &[3, 6]);
        assert_eq!(out.masked.shape().dims(), &[3, 16]);
        // Every gathered value appears at its (i,j) slot in the masked
        // layout; everything else is zero.
        for b in 0..3 {
            let mut g = out.gathered.data()[b * 6..(b + 1) * 6].iter();
            for i in 0..4 {
                for j in 0..4 {
                    let m = out.masked.data()[b * 16 + i * 4 + j];
                    if j < i {
                        assert_eq!(m, *g.next().unwrap());
                    } else {
                        assert_eq!(m, 0.0, "redundant slot must be masked");
                    }
                }
            }
        }
    }

    #[test]
    fn interactions_are_dot_products() {
        // Two orthogonal and two identical features.
        let feats = Tensor::new(
            Shape::of(&[1, 6]),
            vec![1.0, 0.0, 0.0, 1.0, 1.0, 0.0], // f0=(1,0), f1=(0,1), f2=(1,0)
        );
        let out = masked_self_interaction(&feats, 2).unwrap();
        // gathered order: (1,0), (2,0), (2,1)
        assert_eq!(out.gathered.data(), &[0.0, 1.0, 0.0]);
    }

    #[test]
    fn downstream_layer_ignoring_nulls_matches_gather_path() {
        // A linear layer whose weights are zero at the null slots gives
        // identical outputs for both layouts — the paper's invariant.
        let mut rng = TensorRng::seed(8);
        let feats = rng.uniform(Shape::of(&[5, 3 * 2]), -1.0, 1.0);
        let out = masked_self_interaction(&feats, 2).unwrap();
        let f = 3;
        let tri = 3;
        let w_tri = rng.uniform(Shape::of(&[tri, 4]), -1.0, 1.0);
        // Expand to the masked layout: weight rows at (i,j) slots, zeros
        // elsewhere.
        let mut w_full = vec![0.0f32; f * f * 4];
        let mut r = 0;
        for i in 0..f {
            for j in 0..f {
                if j < i {
                    w_full[(i * f + j) * 4..(i * f + j + 1) * 4]
                        .copy_from_slice(&w_tri.data()[r * 4..(r + 1) * 4]);
                    r += 1;
                }
            }
        }
        let w_full = Tensor::new(Shape::of(&[f * f, 4]), w_full);
        let a = out.gathered.matmul(&w_tri).unwrap();
        let b = out.masked.matmul(&w_full).unwrap();
        assert!(a.max_abs_diff(&b) < 1e-5);
    }

    #[test]
    fn rejects_indivisible_width() {
        let feats = Tensor::zeros(Shape::of(&[1, 7]));
        let err = masked_self_interaction(&feats, 2);
        assert_eq!(
            err,
            Err(EmbeddingError::IndivisibleWidth { width: 7, dim: 2 })
        );
    }
}
