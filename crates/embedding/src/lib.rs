//! Partitioned embedding tables (DLRM, §4.6).
//!
//! DLRM's embedding tables do not fit on one chip ("Partition large
//! embedding tables: This is actually necessary to run the model"), so the
//! paper's submission:
//!
//! * **replicates small tables and partitions large ones** across chips;
//! * masks the redundant self-interaction features with zeros instead of
//!   gathering ("Optimize gather overheads");
//! * **evaluates multiple steps on device** to amortize PCIe/host
//!   round-trips.
//!
//! This crate implements all three for real: [`Placement`] decides where
//! each table lives, [`ShardedEmbedding`] executes distributed lookups
//! over the simulated mesh (row-partitioned tables answer remote lookups
//! via an all-to-all exchange that is timed on the network), and
//! [`masked_self_interaction`] computes the masked feature
//! self-interaction.
//!
//! ```
//! use multipod_embedding::{EmbeddingSpec, Placement};
//!
//! let specs = vec![
//!     EmbeddingSpec { rows: 100, dim: 8 },          // small → replicated
//!     EmbeddingSpec { rows: 10_000_000, dim: 8 },   // large → partitioned
//! ];
//! let placement = Placement::plan(&specs, 4, 1 << 20);
//! assert!(placement.is_replicated(0));
//! assert!(!placement.is_replicated(1));
//! ```

mod cache;
mod error;
mod interaction;
mod placement;
mod sharded;

pub use cache::{EmbeddingCache, LruCache};
pub use error::EmbeddingError;
pub use interaction::{masked_self_interaction, InteractionOutput};
pub use placement::{EmbeddingSpec, Placement, TablePlacement};
pub use sharded::{EvalAccumulator, LookupOutcome, ShardedEmbedding};
