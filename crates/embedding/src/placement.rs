//! Table placement: replicate small, partition large.

use serde::{Deserialize, Serialize};

/// Size description of one categorical feature's table.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct EmbeddingSpec {
    /// Vocabulary size.
    pub rows: usize,
    /// Embedding dimension.
    pub dim: usize,
}

impl EmbeddingSpec {
    /// Bytes of f32 storage for the full table.
    pub fn bytes(&self) -> u64 {
        (self.rows * self.dim) as u64 * 4
    }
}

/// Where one table lives.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TablePlacement {
    /// Every chip holds the whole table (lookups are local).
    Replicated,
    /// Rows are range-partitioned across all chips; chip `c` owns rows
    /// `[c·ceil(rows/chips), …)`. Lookups for remote rows cross the mesh.
    RowPartitioned,
}

/// A placement decision for every table.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    specs: Vec<EmbeddingSpec>,
    decisions: Vec<TablePlacement>,
    chips: usize,
}

impl Placement {
    /// Plans placements for `chips` chips: a table is replicated when its
    /// full copy fits inside `replication_budget_bytes` (per chip,
    /// cumulative across replicated tables); larger tables are
    /// row-partitioned — the paper's "choosing to replicate small tables
    /// and partition large ones".
    ///
    /// # Panics
    ///
    /// Panics when `chips` is zero.
    pub fn plan(specs: &[EmbeddingSpec], chips: usize, replication_budget_bytes: u64) -> Placement {
        assert!(chips > 0, "need at least one chip");
        let mut budget = replication_budget_bytes;
        let decisions = specs
            .iter()
            .map(|s| {
                if s.bytes() <= budget {
                    budget -= s.bytes();
                    TablePlacement::Replicated
                } else {
                    TablePlacement::RowPartitioned
                }
            })
            .collect();
        Placement {
            specs: specs.to_vec(),
            decisions,
            chips,
        }
    }

    /// Number of tables.
    pub fn num_tables(&self) -> usize {
        self.specs.len()
    }

    /// The spec of table `t`.
    ///
    /// # Panics
    ///
    /// Panics when `t` is out of range.
    pub fn spec(&self, t: usize) -> EmbeddingSpec {
        self.specs[t]
    }

    /// Whether table `t` is replicated.
    ///
    /// # Panics
    ///
    /// Panics when `t` is out of range.
    pub fn is_replicated(&self, t: usize) -> bool {
        self.decisions[t] == TablePlacement::Replicated
    }

    /// The chip owning row `row` of table `t` (for partitioned tables).
    ///
    /// # Panics
    ///
    /// Panics when `t` or `row` is out of range.
    pub fn owner_of(&self, t: usize, row: usize) -> usize {
        let spec = self.specs[t];
        assert!(row < spec.rows, "row out of range");
        let rows_per_chip = spec.rows.div_ceil(self.chips);
        row / rows_per_chip
    }

    /// Rows of table `t` stored on `chip`.
    pub fn rows_on_chip(&self, t: usize, chip: usize) -> std::ops::Range<usize> {
        let spec = self.specs[t];
        if self.is_replicated(t) {
            return 0..spec.rows;
        }
        let rows_per_chip = spec.rows.div_ceil(self.chips);
        let lo = (chip * rows_per_chip).min(spec.rows);
        let hi = ((chip + 1) * rows_per_chip).min(spec.rows);
        lo..hi
    }

    /// Per-chip storage bytes under this placement.
    pub fn bytes_per_chip(&self) -> u64 {
        self.specs
            .iter()
            .zip(&self.decisions)
            .map(|(s, d)| match d {
                TablePlacement::Replicated => s.bytes(),
                TablePlacement::RowPartitioned => (s.rows.div_ceil(self.chips) * s.dim) as u64 * 4,
            })
            .sum()
    }

    /// Total bytes if everything were replicated (the infeasible layout
    /// the paper rules out).
    pub fn bytes_fully_replicated(&self) -> u64 {
        self.specs.iter().map(EmbeddingSpec::bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn criteo_like() -> Vec<EmbeddingSpec> {
        // A mix of tiny and huge vocabularies, Criteo-style.
        let mut specs = vec![
            EmbeddingSpec { rows: 10, dim: 16 },
            EmbeddingSpec {
                rows: 1000,
                dim: 16,
            },
            EmbeddingSpec { rows: 300, dim: 16 },
        ];
        specs.push(EmbeddingSpec {
            rows: 40_000_000,
            dim: 16,
        });
        specs.push(EmbeddingSpec {
            rows: 25_000_000,
            dim: 16,
        });
        specs
    }

    #[test]
    fn small_tables_replicate_large_partition() {
        let p = Placement::plan(&criteo_like(), 16, 1 << 20);
        assert!(p.is_replicated(0));
        assert!(p.is_replicated(1));
        assert!(p.is_replicated(2));
        assert!(!p.is_replicated(3));
        assert!(!p.is_replicated(4));
    }

    #[test]
    fn partitioning_is_necessary_to_fit() {
        // §4.6: partitioning "is actually necessary to run the model".
        let p = Placement::plan(&criteo_like(), 16, 1 << 20);
        let hbm: u64 = 32 * (1 << 30);
        assert!(p.bytes_per_chip() < hbm / 4);
        // Fully replicated would still fit 16 GiB here but scales with
        // table count; the real Criteo model does not fit (checked with
        // the catalog numbers in multipod-models).
        assert!(p.bytes_per_chip() < p.bytes_fully_replicated() / 10);
    }

    #[test]
    fn row_ranges_tile_the_table() {
        let p = Placement::plan(&criteo_like(), 4, 0);
        let spec = p.spec(3);
        let mut covered = 0;
        for chip in 0..4 {
            let r = p.rows_on_chip(3, chip);
            assert_eq!(r.start, covered);
            covered = r.end;
        }
        assert_eq!(covered, spec.rows);
    }

    #[test]
    fn owner_matches_row_ranges() {
        let p = Placement::plan(&criteo_like(), 8, 0);
        for &row in &[0usize, 1, 4_999_999, 5_000_000, 39_999_999] {
            let owner = p.owner_of(3, row);
            assert!(p.rows_on_chip(3, owner).contains(&row));
        }
    }

    #[test]
    fn zero_budget_partitions_everything() {
        let p = Placement::plan(&criteo_like(), 4, 0);
        for t in 0..p.num_tables() {
            assert!(!p.is_replicated(t));
        }
    }
}
