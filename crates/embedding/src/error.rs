//! Typed errors for the distributed embedding path.

use std::fmt;

use multipod_simnet::NetworkError;
use multipod_topology::TopologyError;

/// Why an embedding operation was rejected.
#[derive(Clone, Debug, PartialEq)]
pub enum EmbeddingError {
    /// DLRM tables must share one embedding dimension.
    DimMismatch {
        /// Offending table index.
        table: usize,
        /// That table's dimension.
        dim: usize,
        /// The dimension of table 0 (the layout's reference).
        expected: usize,
    },
    /// A table index beyond the placement was used.
    TableOutOfRange {
        /// The bad table index.
        table: usize,
        /// Tables in the placement.
        tables: usize,
    },
    /// A row index beyond its table was used.
    RowOutOfRange {
        /// Table the row was requested from.
        table: usize,
        /// The bad row index.
        row: usize,
        /// Rows in that table.
        rows: usize,
    },
    /// A lookup sample must carry exactly one index per table.
    ArityMismatch {
        /// Offending sample index.
        sample: usize,
        /// Indices that sample carried.
        got: usize,
        /// Tables in the placement.
        tables: usize,
    },
    /// A scatter-update gradient does not match the lookup layout.
    GradShapeMismatch {
        /// Gradient dims supplied.
        got: Vec<usize>,
        /// `[batch, tables · dim]` the layout expects.
        expected: Vec<usize>,
    },
    /// Feature width must be an exact multiple of the embedding dim.
    IndivisibleWidth {
        /// Feature width supplied.
        width: usize,
        /// Embedding dimension.
        dim: usize,
    },
    /// A lookup response message could not be routed.
    Network(NetworkError),
}

impl fmt::Display for EmbeddingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmbeddingError::DimMismatch {
                table,
                dim,
                expected,
            } => write!(
                f,
                "table {table} has dim {dim}, but the layout requires {expected}"
            ),
            EmbeddingError::TableOutOfRange { table, tables } => {
                write!(f, "table {table} out of range for {tables} tables")
            }
            EmbeddingError::RowOutOfRange { table, row, rows } => {
                write!(f, "row {row} out of range for table {table} ({rows} rows)")
            }
            EmbeddingError::ArityMismatch {
                sample,
                got,
                tables,
            } => write!(
                f,
                "sample {sample} carries {got} indices, expected one per table ({tables})"
            ),
            EmbeddingError::GradShapeMismatch { got, expected } => {
                write!(
                    f,
                    "gradient shape {got:?} does not match lookup layout {expected:?}"
                )
            }
            EmbeddingError::IndivisibleWidth { width, dim } => {
                write!(f, "feature width {width} must be tables * dim (dim {dim})")
            }
            EmbeddingError::Network(e) => write!(f, "lookup routing failed: {e}"),
        }
    }
}

impl std::error::Error for EmbeddingError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EmbeddingError::Network(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetworkError> for EmbeddingError {
    fn from(e: NetworkError) -> EmbeddingError {
        EmbeddingError::Network(e)
    }
}

impl From<TopologyError> for EmbeddingError {
    fn from(e: TopologyError) -> EmbeddingError {
        EmbeddingError::Network(NetworkError::Route(e))
    }
}
