//! Property tests for the embedding substrate.

use multipod_embedding::{masked_self_interaction, EmbeddingSpec, Placement, ShardedEmbedding};
use multipod_simnet::{Network, NetworkConfig, SimTime};
use multipod_topology::{Multipod, MultipodConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Row ranges of a partitioned table tile it exactly, and the owner
    /// function is consistent with the ranges, for arbitrary table sizes
    /// and chip counts (including non-dividing ones).
    #[test]
    fn placement_tiles_rows(rows in 1usize..10_000, chips in 1usize..40) {
        let placement = Placement::plan(&[EmbeddingSpec { rows, dim: 4 }], chips, 0);
        let mut covered = 0usize;
        for chip in 0..chips {
            let r = placement.rows_on_chip(0, chip);
            prop_assert_eq!(r.start, covered);
            prop_assert!(r.end >= r.start);
            covered = r.end;
        }
        prop_assert_eq!(covered, rows);
        for probe in [0, rows / 2, rows - 1] {
            let owner = placement.owner_of(0, probe);
            prop_assert!(placement.rows_on_chip(0, owner).contains(&probe));
        }
    }

    /// The replication budget is honoured: replicated table bytes never
    /// exceed it, and everything else is partitioned.
    #[test]
    fn replication_budget_is_respected(
        tables in prop::collection::vec(1usize..100_000, 1..12),
        budget_kb in 0u64..512,
    ) {
        let specs: Vec<EmbeddingSpec> =
            tables.iter().map(|&rows| EmbeddingSpec { rows, dim: 8 }).collect();
        let budget = budget_kb * 1024;
        let placement = Placement::plan(&specs, 8, budget);
        let replicated_bytes: u64 = specs
            .iter()
            .enumerate()
            .filter(|&(t, _)| placement.is_replicated(t))
            .map(|(_, s)| s.bytes())
            .sum();
        prop_assert!(replicated_bytes <= budget);
        prop_assert!(placement.bytes_per_chip() <= placement.bytes_fully_replicated());
    }

    /// Lookups return exactly the requested rows, regardless of
    /// placement, batch, or index pattern.
    #[test]
    fn lookup_returns_requested_rows(
        batch in 1usize..24,
        seed in 0u64..10_000,
        budget in prop::sample::select(vec![0u64, 1 << 12, 1 << 30]),
    ) {
        let specs = vec![
            EmbeddingSpec { rows: 32, dim: 3 },
            EmbeddingSpec { rows: 500, dim: 3 },
        ];
        let placement = Placement::plan(&specs, 4, budget);
        let emb = ShardedEmbedding::init(placement, seed).unwrap();
        let mesh = Multipod::new(MultipodConfig::mesh(2, 2, true));
        let mut net = Network::new(mesh, NetworkConfig::tpu_v3());
        let mut r = seed;
        let mut next = |m: usize| {
            r = r.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (r >> 33) as usize % m
        };
        let indices: Vec<Vec<usize>> =
            (0..batch).map(|_| vec![next(32), next(500)]).collect();
        let out = emb.lookup(&mut net, &indices, SimTime::ZERO).unwrap();
        prop_assert_eq!(out.embeddings.shape().dims(), &[batch, 6]);
        for (s, row_ids) in indices.iter().enumerate() {
            for (t, &row) in row_ids.iter().enumerate() {
                let expect = emb.row(t, row).unwrap();
                let got = &out.embeddings.data()[s * 6 + t * 3..s * 6 + (t + 1) * 3];
                prop_assert_eq!(got, expect.data());
            }
        }
        prop_assert_eq!(
            out.remote_rows + out.local_rows,
            batch * 2,
            "every lookup is accounted local or remote"
        );
    }

    /// The masked interaction layout always carries exactly the
    /// lower-triangle values and zeros elsewhere.
    #[test]
    fn masked_interaction_layout(batch in 1usize..6, tables in 2usize..7, seed in 0u64..1000) {
        use multipod_tensor::{Shape, TensorRng};
        let dim = 2usize;
        let mut rng = TensorRng::seed(seed);
        let feats = rng.uniform(Shape::of(&[batch, tables * dim]), -1.0, 1.0);
        let out = masked_self_interaction(&feats, dim).unwrap();
        let f = tables;
        prop_assert_eq!(out.gathered.shape().dims(), &[batch, f * (f - 1) / 2]);
        prop_assert_eq!(out.masked.shape().dims(), &[batch, f * f]);
        for b in 0..batch {
            let mut g = out.gathered.data()[b * f * (f - 1) / 2..(b + 1) * f * (f - 1) / 2]
                .iter();
            for i in 0..f {
                for j in 0..f {
                    let m = out.masked.data()[b * f * f + i * f + j];
                    if j < i {
                        prop_assert_eq!(m, *g.next().unwrap());
                    } else {
                        prop_assert_eq!(m, 0.0);
                    }
                }
            }
        }
    }
}
