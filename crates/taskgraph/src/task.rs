//! Task identities, kinds, and the resources they occupy.

use std::fmt;

use serde::{Deserialize, Serialize};

use multipod_simnet::SimTime;

/// Identifies a task within a [`crate::TaskGraph`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TaskId(pub usize);

impl fmt::Debug for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// The mesh axis a collective phase runs along.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Axis {
    /// Torus Y rings (phase 1/4b of the 2-D summation).
    Y,
    /// Mesh X lines (phase 2/4a).
    X,
}

impl Axis {
    fn label(self) -> &'static str {
        match self {
            Axis::Y => "y",
            Axis::X => "x",
        }
    }
}

/// What a task does — the typed vocabulary of one training step.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TaskKind {
    /// The forward pass (plus loss).
    Forward,
    /// One backprop segment; segment `layer` produces gradient bucket
    /// `layer` (reverse layer order: bucket 0 holds the topmost layers'
    /// gradients and is ready first).
    LayerBackprop {
        /// Backprop segment index.
        layer: u32,
    },
    /// Model-parallel collectives inside the tile (they block the cores,
    /// so they occupy the compute resource).
    ModelParallelComm,
    /// Reduce-scatter of one gradient bucket along `axis`.
    ReduceScatter {
        /// Gradient bucket index.
        bucket: u32,
        /// Mesh axis.
        axis: Axis,
    },
    /// All-gather of one updated-weight bucket along `axis`.
    AllGather {
        /// Gradient bucket index.
        bucket: u32,
        /// Mesh axis.
        axis: Axis,
    },
    /// The shard owner's optimizer update for one bucket (§3.2).
    OptimizerShardUpdate {
        /// Gradient bucket index.
        bucket: u32,
    },
    /// DLRM's embedding lookups + all-to-all.
    Embedding,
    /// Host input pipeline producing the next batch.
    InputFetch,
    /// Streaming one checkpoint shard over PCIe.
    CheckpointSave {
        /// Checkpoint shard index.
        shard: u32,
    },
    /// An aggregate serial phase (the overlap-disabled step model uses
    /// one `Serial` task per analytic component).
    Serial {
        /// Which analytic component this stands for.
        phase: SerialPhase,
    },
    /// Serving: host-side embedding-cache probe + local HBM gathers for
    /// one request batch.
    ServeLookup {
        /// Request-batch index within the serving campaign.
        batch: u32,
    },
    /// Serving: the small-batch all-to-all exchanging remote embedding
    /// rows for one request batch.
    ServeAllToAll {
        /// Request-batch index within the serving campaign.
        batch: u32,
    },
    /// Serving: the dense MLP forward pass over one request batch.
    ServeDense {
        /// Request-batch index within the serving campaign.
        batch: u32,
    },
}

/// The analytic step components, for overlap-disabled aggregate tasks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SerialPhase {
    /// MXU compute (forward + backward).
    Compute,
    /// Model-parallel collectives.
    ModelParallelComm,
    /// The whole 2-D gradient summation.
    GradientComm,
    /// Optimizer arithmetic.
    WeightUpdate,
    /// Embedding path.
    Embedding,
    /// Host input stall.
    InputStall,
}

impl SerialPhase {
    /// Stable label used in trace spans.
    pub fn label(self) -> &'static str {
        match self {
            SerialPhase::Compute => "compute",
            SerialPhase::ModelParallelComm => "model-parallel-comm",
            SerialPhase::GradientComm => "gradient-comm",
            SerialPhase::WeightUpdate => "weight-update",
            SerialPhase::Embedding => "embedding",
            SerialPhase::InputStall => "input-stall",
        }
    }
}

impl TaskKind {
    /// Shorthand for a Y-axis bucket reduce-scatter.
    pub fn reduce_scatter_y(bucket: u32) -> TaskKind {
        TaskKind::ReduceScatter {
            bucket,
            axis: Axis::Y,
        }
    }

    /// Shorthand for an X-axis bucket reduce-scatter.
    pub fn reduce_scatter_x(bucket: u32) -> TaskKind {
        TaskKind::ReduceScatter {
            bucket,
            axis: Axis::X,
        }
    }

    /// Shorthand for an X-axis bucket all-gather.
    pub fn all_gather_x(bucket: u32) -> TaskKind {
        TaskKind::AllGather {
            bucket,
            axis: Axis::X,
        }
    }

    /// Shorthand for a Y-axis bucket all-gather.
    pub fn all_gather_y(bucket: u32) -> TaskKind {
        TaskKind::AllGather {
            bucket,
            axis: Axis::Y,
        }
    }

    /// A human-readable span label.
    pub fn label(&self) -> String {
        match self {
            TaskKind::Forward => "forward".to_string(),
            TaskKind::LayerBackprop { layer } => format!("backprop-{layer}"),
            TaskKind::ModelParallelComm => "model-parallel-comm".to_string(),
            TaskKind::ReduceScatter { bucket, axis } => {
                format!("{}-reduce-scatter-b{bucket}", axis.label())
            }
            TaskKind::AllGather { bucket, axis } => {
                format!("{}-all-gather-b{bucket}", axis.label())
            }
            TaskKind::OptimizerShardUpdate { bucket } => format!("weight-update-b{bucket}"),
            TaskKind::Embedding => "embedding".to_string(),
            TaskKind::InputFetch => "input-fetch".to_string(),
            TaskKind::CheckpointSave { shard } => format!("ckpt-save-s{shard}"),
            TaskKind::Serial { phase } => phase.label().to_string(),
            TaskKind::ServeLookup { batch } => format!("serve-lookup-b{batch}"),
            TaskKind::ServeAllToAll { batch } => format!("serve-all-to-all-b{batch}"),
            TaskKind::ServeDense { batch } => format!("serve-dense-b{batch}"),
        }
    }
}

/// The serialized unit a task occupies while it runs. Each resource
/// executes one task at a time; tasks on different resources overlap.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Resource {
    /// The matrix units (compute, optimizer arithmetic, embedding HBM).
    Mxu,
    /// The ICI interconnect (gradient summation phases). One resource —
    /// collective phases serialize against each other, exactly as the
    /// analytic `TwoDimBreakdown::total()` charges them, and overlap only
    /// with non-ICI work.
    Ici,
    /// The host input pipeline.
    Host,
    /// The PCIe link to host storage (checkpoint streaming).
    Pcie,
}

impl Resource {
    /// Every resource, in deterministic dispatch order.
    pub const ALL: [Resource; 4] = [Resource::Mxu, Resource::Ici, Resource::Host, Resource::Pcie];

    /// Stable lowercase label used in metrics.
    pub fn label(self) -> &'static str {
        match self {
            Resource::Mxu => "mxu",
            Resource::Ici => "ici",
            Resource::Host => "host",
            Resource::Pcie => "pcie",
        }
    }

    pub(crate) fn index(self) -> usize {
        match self {
            Resource::Mxu => 0,
            Resource::Ici => 1,
            Resource::Host => 2,
            Resource::Pcie => 3,
        }
    }
}

/// One node of a [`crate::TaskGraph`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Task {
    /// What the task does.
    pub kind: TaskKind,
    /// Where it runs.
    pub resource: Resource,
    /// How long it takes, seconds (finite, non-negative).
    pub seconds: f64,
    /// Earliest sim-time the task may start, regardless of dependencies.
    /// `SimTime::ZERO` (the [`crate::TaskGraph::add`] default) means
    /// "as soon as dependencies allow"; open-loop serving workloads use
    /// non-zero releases to model request arrival times.
    pub release: SimTime,
    /// Tasks that must finish first (all ids precede this task's).
    pub deps: Vec<TaskId>,
}
