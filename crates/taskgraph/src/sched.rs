//! The deterministic list scheduler.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use multipod_simnet::{EventQueue, SimTime};
use multipod_telemetry::{MetricId, Subsystem, Telemetry};
use multipod_trace::{SpanCategory, SpanEvent, TraceSink, Track};

use crate::graph::TaskGraph;
use crate::task::{Resource, TaskId, TaskKind};

/// One task's placement in simulated time.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScheduledTask {
    /// The task.
    pub id: TaskId,
    /// Its kind (copied out of the graph for reporting).
    pub kind: TaskKind,
    /// The resource it ran on.
    pub resource: Resource,
    /// Requested duration, seconds.
    pub seconds: f64,
    /// When it started.
    pub start: SimTime,
    /// When it finished (`start + seconds`).
    pub end: SimTime,
}

/// The executed schedule: every task placed, plus the makespan.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TaskSchedule {
    /// Placements in task-id order.
    pub tasks: Vec<ScheduledTask>,
    /// When the last task finished.
    pub makespan: SimTime,
}

impl TaskGraph {
    /// Executes the graph over the simnet event engine and returns the
    /// schedule.
    ///
    /// Each [`Resource`] runs one task at a time; among ready tasks on a
    /// resource the lowest id starts first, resources dispatch in
    /// [`Resource::ALL`] order, and completion ties pop FIFO — so the
    /// schedule is a pure function of the graph (the determinism
    /// contract in the crate docs).
    ///
    /// A task with a non-zero release time (see
    /// [`TaskGraph::add_released`](crate::TaskGraph::add_released)) joins
    /// its resource's ready set only once sim-time reaches the release:
    /// the event queue carries both completion events (for tasks that
    /// have started) and release events (for tasks whose dependencies
    /// are done but whose release lies in the future), distinguished by
    /// a per-task `started` flag.
    pub fn run(&self) -> TaskSchedule {
        let n = self.tasks.len();
        let mut remaining: Vec<usize> = self.tasks.iter().map(|t| t.deps.len()).collect();
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, t) in self.tasks.iter().enumerate() {
            for d in &t.deps {
                dependents[d.0].push(i);
            }
        }

        let mut ready: [BTreeSet<usize>; 4] = Default::default();
        let mut running: [Option<usize>; 4] = [None; 4];
        let mut started: Vec<bool> = vec![false; n];
        let mut starts: Vec<SimTime> = vec![SimTime::ZERO; n];
        let mut ends: Vec<SimTime> = vec![SimTime::ZERO; n];
        let mut queue: EventQueue<usize> = EventQueue::new();

        for (i, t) in self.tasks.iter().enumerate() {
            if t.deps.is_empty() {
                if t.release > SimTime::ZERO {
                    queue.schedule(t.release, i);
                } else {
                    ready[t.resource.index()].insert(i);
                }
            }
        }

        let dispatch = |now: SimTime,
                        ready: &mut [BTreeSet<usize>; 4],
                        running: &mut [Option<usize>; 4],
                        started: &mut Vec<bool>,
                        queue: &mut EventQueue<usize>,
                        starts: &mut Vec<SimTime>,
                        ends: &mut Vec<SimTime>| {
            for r in Resource::ALL {
                let slot = r.index();
                if running[slot].is_some() {
                    continue;
                }
                let Some(&next) = ready[slot].first() else {
                    continue;
                };
                ready[slot].remove(&next);
                let end = now + self.tasks[next].seconds;
                starts[next] = now;
                ends[next] = end;
                started[next] = true;
                running[slot] = Some(next);
                queue.schedule(end, next);
            }
        };

        dispatch(
            SimTime::ZERO,
            &mut ready,
            &mut running,
            &mut started,
            &mut queue,
            &mut starts,
            &mut ends,
        );
        let mut makespan = SimTime::ZERO;
        while let Some((now, done)) = queue.pop_batch() {
            makespan = makespan.max(now);
            for i in done {
                if !started[i] {
                    // Release event: dependencies were already satisfied,
                    // the task was only waiting for sim-time to reach its
                    // release. It now contends for its resource.
                    ready[self.tasks[i].resource.index()].insert(i);
                    continue;
                }
                running[self.tasks[i].resource.index()] = None;
                for &d in &dependents[i] {
                    remaining[d] -= 1;
                    if remaining[d] == 0 {
                        let release = self.tasks[d].release;
                        if release > now {
                            queue.schedule(release, d);
                        } else {
                            ready[self.tasks[d].resource.index()].insert(d);
                        }
                    }
                }
            }
            dispatch(
                now,
                &mut ready,
                &mut running,
                &mut started,
                &mut queue,
                &mut starts,
                &mut ends,
            );
        }

        let tasks = self
            .tasks
            .iter()
            .enumerate()
            .map(|(i, t)| ScheduledTask {
                id: TaskId(i),
                kind: t.kind,
                resource: t.resource,
                seconds: t.seconds,
                start: starts[i],
                end: ends[i],
            })
            .collect();
        TaskSchedule { tasks, makespan }
    }
}

impl TaskSchedule {
    /// Total busy seconds of a resource: the left-fold sum, in task-id
    /// order, of the durations placed on it. Because a resource runs one
    /// task at a time, the makespan can never be (more than a rounding
    /// error) below any resource's busy time.
    pub fn busy_seconds(&self, resource: Resource) -> f64 {
        self.tasks
            .iter()
            .filter(|t| t.resource == resource)
            .fold(0.0, |acc, t| acc + t.seconds)
    }

    /// MXU busy seconds (the "compute" side of the overlap bound).
    pub fn compute_seconds(&self) -> f64 {
        self.busy_seconds(Resource::Mxu)
    }

    /// ICI busy seconds (the "comm" side of the overlap bound).
    pub fn comm_seconds(&self) -> f64 {
        self.busy_seconds(Resource::Ici)
    }

    /// Records every task as a span starting at `base`, on the simulation
    /// track, and returns `base + makespan` so successive steps can be
    /// laid out back to back. Concurrent tasks produce overlapping spans,
    /// which is exactly what the telemetry critical-path profiler's
    /// `overlap_fraction` measures.
    pub fn record_trace(&self, sink: &dyn TraceSink, base: SimTime) -> SimTime {
        for t in &self.tasks {
            if t.seconds <= 0.0 {
                continue;
            }
            let category = match t.kind {
                TaskKind::ReduceScatter { .. } | TaskKind::AllGather { .. } => {
                    SpanCategory::CollectivePhase
                }
                TaskKind::OptimizerShardUpdate { .. } => SpanCategory::Optimizer,
                TaskKind::InputFetch => SpanCategory::Input,
                TaskKind::CheckpointSave { .. } => SpanCategory::Checkpoint,
                TaskKind::ServeLookup { .. }
                | TaskKind::ServeAllToAll { .. }
                | TaskKind::ServeDense { .. } => SpanCategory::Serve,
                TaskKind::Serial { phase } => match phase {
                    crate::task::SerialPhase::GradientComm => SpanCategory::CollectivePhase,
                    crate::task::SerialPhase::WeightUpdate => SpanCategory::Optimizer,
                    crate::task::SerialPhase::InputStall => SpanCategory::Input,
                    _ => SpanCategory::StepPhase,
                },
                _ => SpanCategory::StepPhase,
            };
            sink.record_span(SpanEvent::new(
                Track::Sim,
                category,
                t.kind.label(),
                base + t.start.seconds(),
                base + t.end.seconds(),
            ));
        }
        base + self.makespan.seconds()
    }

    /// Records the schedule into the telemetry registry: a task counter,
    /// per-resource busy-time histograms, and the makespan.
    pub fn record_telemetry(&self, telemetry: &Telemetry) {
        telemetry.inc_counter(
            MetricId::new(Subsystem::Sched, "tasks"),
            self.tasks.len() as u64,
        );
        for r in Resource::ALL {
            let busy = self.busy_seconds(r);
            if busy > 0.0 {
                telemetry.observe(
                    MetricId::labeled(Subsystem::Sched, "resource_busy_seconds", r.label()),
                    busy,
                );
            }
        }
        telemetry.observe(
            MetricId::new(Subsystem::Sched, "makespan_seconds"),
            self.makespan.seconds(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::SerialPhase;

    #[test]
    fn independent_resources_overlap() {
        let mut g = TaskGraph::new();
        g.add(TaskKind::Forward, Resource::Mxu, 3.0, &[]).unwrap();
        g.add(TaskKind::InputFetch, Resource::Host, 2.0, &[])
            .unwrap();
        let s = g.run();
        assert_eq!(s.makespan, SimTime::from_seconds(3.0));
        assert_eq!(s.tasks[1].start, SimTime::ZERO);
    }

    #[test]
    fn same_resource_serializes_lowest_id_first() {
        let mut g = TaskGraph::new();
        g.add(TaskKind::reduce_scatter_y(0), Resource::Ici, 1.0, &[])
            .unwrap();
        g.add(TaskKind::reduce_scatter_y(1), Resource::Ici, 1.0, &[])
            .unwrap();
        let s = g.run();
        assert_eq!(s.tasks[0].start, SimTime::ZERO);
        assert_eq!(s.tasks[1].start, SimTime::from_seconds(1.0));
        assert_eq!(s.makespan, SimTime::from_seconds(2.0));
        assert_eq!(s.comm_seconds(), 2.0);
    }

    #[test]
    fn dependencies_gate_start_times() {
        let mut g = TaskGraph::new();
        let fwd = g.add(TaskKind::Forward, Resource::Mxu, 2.0, &[]).unwrap();
        let bwd = g
            .add(
                TaskKind::LayerBackprop { layer: 0 },
                Resource::Mxu,
                1.0,
                &[fwd],
            )
            .unwrap();
        let rs = g
            .add(TaskKind::reduce_scatter_y(0), Resource::Ici, 4.0, &[bwd])
            .unwrap();
        let s = g.run();
        assert_eq!(s.tasks[rs.0].start, SimTime::from_seconds(3.0));
        assert_eq!(s.makespan, SimTime::from_seconds(7.0));
    }

    #[test]
    fn serial_chain_folds_left_bit_for_bit() {
        // The overlap-disabled contract: a dependency chain accumulates
        // its makespan as the left fold of the durations.
        let durations = [0.1, 0.2, 0.3, 0.4, 0.05, 0.007];
        let mut g = TaskGraph::new();
        let mut prev: Option<TaskId> = None;
        for &d in &durations {
            let deps: Vec<TaskId> = prev.into_iter().collect();
            prev = Some(
                g.add(
                    TaskKind::Serial {
                        phase: SerialPhase::Compute,
                    },
                    Resource::Mxu,
                    d,
                    &deps,
                )
                .unwrap(),
            );
        }
        let expected = durations.iter().fold(0.0f64, |acc, &d| acc + d);
        let s = g.run();
        assert_eq!(s.makespan.seconds().to_bits(), expected.to_bits());
    }

    #[test]
    fn zero_duration_tasks_complete() {
        let mut g = TaskGraph::new();
        let a = g.add(TaskKind::Forward, Resource::Mxu, 0.0, &[]).unwrap();
        let b = g
            .add(
                TaskKind::LayerBackprop { layer: 0 },
                Resource::Mxu,
                0.0,
                &[a],
            )
            .unwrap();
        g.add(TaskKind::reduce_scatter_y(0), Resource::Ici, 1.0, &[b])
            .unwrap();
        let s = g.run();
        assert_eq!(s.makespan, SimTime::from_seconds(1.0));
    }

    #[test]
    fn schedule_is_deterministic_across_runs() {
        let build = || {
            let mut g = TaskGraph::new();
            let fwd = g.add(TaskKind::Forward, Resource::Mxu, 0.31, &[]).unwrap();
            let mut grads = Vec::new();
            for b in 0..4u32 {
                let bwd = g
                    .add(
                        TaskKind::LayerBackprop { layer: b },
                        Resource::Mxu,
                        0.17,
                        &[fwd],
                    )
                    .unwrap();
                let rs = g
                    .add(TaskKind::reduce_scatter_y(b), Resource::Ici, 0.11, &[bwd])
                    .unwrap();
                grads.push(rs);
            }
            g.add(TaskKind::InputFetch, Resource::Host, 0.5, &[])
                .unwrap();
            g.run()
        };
        let a = serde_json::to_string(&build()).unwrap();
        let b = serde_json::to_string(&build()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn release_time_delays_start_on_idle_resource() {
        let mut g = TaskGraph::new();
        g.add_released(
            TaskKind::ServeLookup { batch: 0 },
            Resource::Host,
            0.5,
            SimTime::from_seconds(2.0),
            &[],
        )
        .unwrap();
        let s = g.run();
        assert_eq!(s.tasks[0].start, SimTime::from_seconds(2.0));
        assert_eq!(s.makespan, SimTime::from_seconds(2.5));
    }

    #[test]
    fn release_after_deps_done_gates_start() {
        // Dependency finishes at t=1 but the dependent's release is t=3:
        // the dependent starts at its release, not at the dep completion.
        let mut g = TaskGraph::new();
        let a = g
            .add(TaskKind::ServeLookup { batch: 0 }, Resource::Host, 1.0, &[])
            .unwrap();
        let b = g
            .add_released(
                TaskKind::ServeAllToAll { batch: 0 },
                Resource::Ici,
                0.25,
                SimTime::from_seconds(3.0),
                &[a],
            )
            .unwrap();
        let s = g.run();
        assert_eq!(s.tasks[b.0].start, SimTime::from_seconds(3.0));
        assert_eq!(s.makespan, SimTime::from_seconds(3.25));
    }

    #[test]
    fn release_before_deps_done_is_a_no_op() {
        // Release at t=0.5 but the dependency runs until t=2: the
        // dependency chain dominates and the release adds nothing.
        let mut g = TaskGraph::new();
        let a = g.add(TaskKind::Forward, Resource::Mxu, 2.0, &[]).unwrap();
        let b = g
            .add_released(
                TaskKind::ServeDense { batch: 0 },
                Resource::Mxu,
                1.0,
                SimTime::from_seconds(0.5),
                &[a],
            )
            .unwrap();
        let s = g.run();
        assert_eq!(s.tasks[b.0].start, SimTime::from_seconds(2.0));
        assert_eq!(s.makespan, SimTime::from_seconds(3.0));
    }

    #[test]
    fn released_tasks_queue_behind_running_work() {
        // A batch released at t=1 while the Ici resource is busy until
        // t=4 waits for the resource, not just the release.
        let mut g = TaskGraph::new();
        g.add(TaskKind::reduce_scatter_y(0), Resource::Ici, 4.0, &[])
            .unwrap();
        let b = g
            .add_released(
                TaskKind::ServeAllToAll { batch: 0 },
                Resource::Ici,
                0.5,
                SimTime::from_seconds(1.0),
                &[],
            )
            .unwrap();
        let s = g.run();
        assert_eq!(s.tasks[b.0].start, SimTime::from_seconds(4.0));
        assert_eq!(s.makespan, SimTime::from_seconds(4.5));
    }

    #[test]
    fn makespan_bounded_by_busy_sums() {
        let mut g = TaskGraph::new();
        let fwd = g.add(TaskKind::Forward, Resource::Mxu, 1.0, &[]).unwrap();
        let mut prev = fwd;
        for b in 0..3u32 {
            let bwd = g
                .add(
                    TaskKind::LayerBackprop { layer: b },
                    Resource::Mxu,
                    0.5,
                    &[prev],
                )
                .unwrap();
            g.add(TaskKind::reduce_scatter_y(b), Resource::Ici, 0.6, &[bwd])
                .unwrap();
            prev = bwd;
        }
        let s = g.run();
        let compute = s.compute_seconds();
        let comm = s.comm_seconds();
        let m = s.makespan.seconds();
        assert!(m >= compute.max(comm) - 1e-12);
        assert!(m <= compute + comm + 1e-12);
    }
}
