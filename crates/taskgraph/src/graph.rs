//! The dependency-graph builder.

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

use multipod_simnet::SimTime;

use crate::task::{Resource, Task, TaskId, TaskKind};

/// Error raised while building a [`TaskGraph`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum TaskGraphError {
    /// A dependency referenced a task that has not been added yet (tasks
    /// may only depend on earlier tasks, which is what makes the graph a
    /// DAG by construction).
    UnknownDependency {
        /// Index the offending task would have received.
        task: usize,
        /// The dependency that does not precede it.
        dep: TaskId,
    },
    /// A task duration was NaN, infinite, or negative.
    InvalidDuration {
        /// Index the offending task would have received.
        task: usize,
        /// The rejected duration.
        seconds: f64,
    },
}

impl fmt::Display for TaskGraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaskGraphError::UnknownDependency { task, dep } => {
                write!(f, "task {task} depends on not-yet-added task {dep:?}")
            }
            TaskGraphError::InvalidDuration { task, seconds } => {
                write!(f, "task {task} has invalid duration {seconds}s")
            }
        }
    }
}

impl Error for TaskGraphError {}

/// A DAG of typed tasks, built in topological order.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TaskGraph {
    pub(crate) tasks: Vec<Task>,
}

impl TaskGraph {
    /// An empty graph.
    pub fn new() -> TaskGraph {
        TaskGraph { tasks: Vec::new() }
    }

    /// Adds a task that starts once every task in `deps` has finished.
    ///
    /// # Errors
    ///
    /// Returns [`TaskGraphError::UnknownDependency`] when a dependency id
    /// does not precede the new task, and
    /// [`TaskGraphError::InvalidDuration`] for a NaN/infinite/negative
    /// duration — the guards that keep the scheduler's sim-time arithmetic
    /// total.
    pub fn add(
        &mut self,
        kind: TaskKind,
        resource: Resource,
        seconds: f64,
        deps: &[TaskId],
    ) -> Result<TaskId, TaskGraphError> {
        self.add_released(kind, resource, seconds, SimTime::ZERO, deps)
    }

    /// Adds a task that starts once every task in `deps` has finished
    /// **and** sim-time has reached `release`.
    ///
    /// Open-loop serving workloads use releases to pin each request
    /// batch's work to its arrival time: the batch cannot start before
    /// its accumulation window closes even if the mesh is idle.
    /// ([`SimTime`] construction already rejects NaN/infinite/negative
    /// values, so no release-specific validation is needed here.)
    ///
    /// # Errors
    ///
    /// Everything [`TaskGraph::add`] raises.
    pub fn add_released(
        &mut self,
        kind: TaskKind,
        resource: Resource,
        seconds: f64,
        release: SimTime,
        deps: &[TaskId],
    ) -> Result<TaskId, TaskGraphError> {
        let task = self.tasks.len();
        if !(seconds.is_finite() && seconds >= 0.0) {
            return Err(TaskGraphError::InvalidDuration { task, seconds });
        }
        if let Some(&dep) = deps.iter().find(|d| d.0 >= task) {
            return Err(TaskGraphError::UnknownDependency { task, dep });
        }
        self.tasks.push(Task {
            kind,
            resource,
            seconds,
            release,
            deps: deps.to_vec(),
        });
        Ok(TaskId(task))
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// The task behind an id, if it exists.
    pub fn task(&self, id: TaskId) -> Option<&Task> {
        self.tasks.get(id.0)
    }

    /// All tasks in id order.
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_dependencies_are_rejected() {
        let mut g = TaskGraph::new();
        let err = g
            .add(TaskKind::Forward, Resource::Mxu, 1.0, &[TaskId(0)])
            .unwrap_err();
        assert_eq!(
            err,
            TaskGraphError::UnknownDependency {
                task: 0,
                dep: TaskId(0)
            }
        );
    }

    #[test]
    fn nan_and_negative_durations_are_rejected() {
        let mut g = TaskGraph::new();
        for bad in [f64::NAN, f64::INFINITY, -1.0e-9] {
            let err = g
                .add(TaskKind::Forward, Resource::Mxu, bad, &[])
                .unwrap_err();
            assert!(matches!(
                err,
                TaskGraphError::InvalidDuration { task: 0, .. }
            ));
        }
        assert!(g.is_empty());
    }

    #[test]
    fn valid_chains_build() {
        let mut g = TaskGraph::new();
        let a = g.add(TaskKind::Forward, Resource::Mxu, 1.0, &[]).unwrap();
        let b = g
            .add(
                TaskKind::LayerBackprop { layer: 0 },
                Resource::Mxu,
                2.0,
                &[a],
            )
            .unwrap();
        assert_eq!(g.len(), 2);
        assert_eq!(g.task(b).unwrap().deps, vec![a]);
    }
}
