//! A deferred task-graph runtime for the multipod simulator.
//!
//! The analytic step model in `multipod-core` charges every step phase
//! serially: `compute + comm + update + …` ([Figures 6/8's no-overlap
//! baseline]). Real TPU pods hide most of the gradient all-reduce by
//! bucketing gradients and overlapping the Y-then-X reduction with
//! backprop. This crate supplies the runtime for that overlapped model:
//!
//! * [`TaskKind`] — typed step tasks: layer backprop, per-bucket
//!   reduce-scatter/all-gather phases, optimizer shard updates, input
//!   fetch, checkpoint saves;
//! * [`TaskGraph`] — a DAG builder with explicit dependencies (a task may
//!   only depend on already-added tasks, so cycles cannot be expressed);
//! * [`TaskGraph::run`] — a deterministic list scheduler over
//!   [`multipod_simnet::EventQueue`]: each [`Resource`] (MXU, ICI, host,
//!   PCIe) executes one task at a time, independent tasks on different
//!   resources advance concurrently in sim-time.
//!
//! # Determinism contract
//!
//! Given the same graph, [`TaskGraph::run`] is bit-stable: ready tasks are
//! dispatched lowest-id first, resources are polled in a fixed order, and
//! the event queue breaks timestamp ties FIFO. A chain of tasks linked by
//! dependencies accumulates its finish time as a left fold of `f64`
//! additions in task order — which is how `multipod-core` reproduces the
//! analytic `StepBreakdown::total()` bit-for-bit when overlap is disabled.
//!
//! ```
//! use multipod_taskgraph::{Resource, TaskGraph, TaskKind};
//!
//! let mut g = TaskGraph::new();
//! let bwd = g.add(TaskKind::LayerBackprop { layer: 0 }, Resource::Mxu, 2.0e-3, &[]).unwrap();
//! let rs = g
//!     .add(TaskKind::reduce_scatter_y(0), Resource::Ici, 1.0e-3, &[bwd])
//!     .unwrap();
//! let fetch = g.add(TaskKind::InputFetch, Resource::Host, 1.5e-3, &[]).unwrap();
//! let s = g.run();
//! // The input fetch overlaps the device work entirely.
//! assert_eq!(s.makespan.seconds(), 3.0e-3);
//! assert_eq!(s.tasks[rs.0].start.seconds(), 2.0e-3);
//! assert_eq!(s.tasks[fetch.0].start.seconds(), 0.0);
//! ```

mod graph;
mod sched;
mod task;

pub use graph::{TaskGraph, TaskGraphError};
pub use sched::{ScheduledTask, TaskSchedule};
pub use task::{Axis, Resource, SerialPhase, Task, TaskId, TaskKind};
