//! Offline stand-in for `proptest`.
//!
//! Keeps the property-test surface this workspace uses: the `proptest!`
//! macro with `#![proptest_config(...)]` and `pattern in strategy`
//! arguments, `prop_assert!`/`prop_assert_eq!`/`prop_assume!`,
//! `prop_oneof!`, `Just`, `any::<T>()`, range strategies,
//! `prop::collection::vec`, `prop::sample::select`, `prop::bool::ANY`,
//! `proptest::num::f32::NORMAL`, and the `prop_map`/`prop_flat_map`
//! combinators. Cases are sampled from a deterministic per-case RNG
//! (seeded by case index), so failures reproduce exactly. There is no
//! shrinking: a failing case reports its assertion message as-is.

use std::fmt;
use std::ops::Range;

use rand::rngs::SmallRng;
use rand::{Rng as _, RngCore, SeedableRng};

/// Deterministic RNG handed to strategies while sampling one case.
pub struct TestRng {
    inner: SmallRng,
}

impl TestRng {
    /// RNG for the given case index; the same index always replays the
    /// same values.
    pub fn deterministic(case: u64) -> TestRng {
        TestRng {
            inner: SmallRng::seed_from_u64(0x5eed_cafe ^ case.wrapping_mul(0x9e37_79b9)),
        }
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// Assertion failure — aborts the whole test.
    Fail(String),
    /// Precondition not met (`prop_assume!`) — the case is skipped.
    Reject(String),
}

impl TestCaseError {
    /// Builds a failure.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection.
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// Result alias used by generated test bodies.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration (`cases` is the only knob).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 32 }
    }
}

/// Compatibility path: real proptest exposes the config here too.
pub mod test_runner {
    pub use crate::{ProptestConfig, TestCaseError, TestCaseResult, TestRng};
}

/// Drives one property: samples cases until `config.cases` succeed.
/// Rejections are retried with fresh input, up to a cap.
///
/// # Panics
///
/// Panics when a case fails or rejections exhaust the retry budget.
pub fn run_cases<F>(config: ProptestConfig, mut case: F)
where
    F: FnMut(&mut TestRng) -> TestCaseResult,
{
    let mut successes = 0u32;
    let max_attempts = config.cases.saturating_mul(20).max(20);
    let mut attempt = 0u32;
    while successes < config.cases {
        assert!(
            attempt < max_attempts,
            "gave up after {attempt} attempts with only {successes}/{} accepted cases",
            config.cases
        );
        let mut rng = TestRng::deterministic(attempt as u64);
        attempt += 1;
        match case(&mut rng) {
            Ok(()) => successes += 1,
            Err(TestCaseError::Reject(_)) => {}
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest case {} (deterministic seed) failed: {msg}",
                    attempt - 1
                )
            }
        }
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// Type of values produced.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps produced values through `f`.
    fn prop_map<T, F>(self, f: F) -> strategy::Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        strategy::Map { source: self, f }
    }

    /// Feeds produced values into `f`, then samples the strategy it
    /// returns.
    fn prop_flat_map<S2, F>(self, f: F) -> strategy::FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        strategy::FlatMap { source: self, f }
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// The strategy [`any`] returns.
    type Strategy: Strategy<Value = Self>;

    /// Builds that strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Canonical strategy for `A` (e.g. `any::<bool>()`).
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

impl Arbitrary for bool {
    type Strategy = crate::bool::BoolAny;

    fn arbitrary() -> Self::Strategy {
        crate::bool::ANY
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = Range<$t>;

            fn arbitrary() -> Range<$t> {
                <$t>::MIN..<$t>::MAX
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy combinators (`Map`, `FlatMap`, `Union`).
pub mod strategy {
    use super::{Strategy, TestRng};
    use rand::Rng as _;

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) source: S,
        pub(crate) f: F,
    }

    impl<S, T, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            (self.f)(self.source.sample(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        pub(crate) source: S,
        pub(crate) f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.source.sample(rng)).sample(rng)
        }
    }

    /// Uniform choice among boxed strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Builds a union; panics when `options` is empty.
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let pick = rng.gen_range(0..self.options.len());
            self.options[pick].sample(rng)
        }
    }

    /// Boxes a strategy for [`Union`]; lets `prop_oneof!` unify arm types.
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng as _;
    use std::ops::Range;

    /// `Vec` strategy with a sampled length.
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// Vectors of `size` elements drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Sampling from explicit value lists.
pub mod sample {
    use super::{Strategy, TestRng};
    use rand::Rng as _;

    /// Uniform choice from a fixed list.
    pub struct Select<T: Clone> {
        values: Vec<T>,
    }

    /// Strategy drawing one of `values`; panics when empty.
    pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
        assert!(!values.is_empty(), "select needs at least one value");
        Select { values }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            self.values[rng.gen_range(0..self.values.len())].clone()
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};
    use rand::Rng as _;

    /// Fair coin flip.
    #[derive(Clone, Copy, Debug)]
    pub struct BoolAny;

    /// The canonical `bool` strategy.
    pub const ANY: BoolAny = BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.gen_bool(0.5)
        }
    }
}

/// Numeric strategies.
pub mod num {
    /// `f32` strategies.
    pub mod f32 {
        use crate::{Strategy, TestRng};
        use rand::Rng as _;

        /// Produces normal (never zero, subnormal, infinite, or NaN)
        /// `f32` values across a wide magnitude range.
        #[derive(Clone, Copy, Debug)]
        pub struct NormalF32;

        /// The normal-floats strategy.
        pub const NORMAL: NormalF32 = NormalF32;

        impl Strategy for NormalF32 {
            type Value = f32;

            fn sample(&self, rng: &mut TestRng) -> f32 {
                let sign = if rng.gen_bool(0.5) { 1.0f32 } else { -1.0 };
                let mantissa = rng.gen_range(1.0f32..2.0);
                let exponent = rng.gen_range(-30i32..31);
                sign * mantissa * 2.0f32.powi(exponent)
            }
        }
    }
}

/// Everything a property-test module needs in scope.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    // `#[test]` arrives inside `$meta` (as real proptest does it): the
    // attribute repetition is delimited by the literal `fn`, which keeps
    // the grammar unambiguous.
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:pat in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases($config, |__rng| {
                    $(let $arg = $crate::Strategy::sample(&($strategy), __rng);)+
                    let __outcome: $crate::TestCaseResult = (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    __outcome
                });
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:pat in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config(<$crate::ProptestConfig as ::std::default::Default>::default())]
            $(
                $(#[$meta])*
                fn $name( $($arg in $strategy),+ ) $body
            )*
        }
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{} at {}:{}",
                format!($($fmt)+),
                file!(),
                line!()
            )));
        }
    };
}

/// Fails the current case unless both sides compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} == {:?}` at {}:{}",
                left,
                right,
                file!(),
                line!()
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{} (`{:?}` != `{:?}`) at {}:{}",
                format!($($fmt)+),
                left,
                right,
                file!(),
                line!()
            )));
        }
    }};
}

/// Rejects (skips) the current case unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(format!(
                "assumption failed: {}",
                stringify!($cond)
            )));
        }
    };
}

/// Uniform choice among strategy arms producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($arm)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, Copy, PartialEq)]
    enum Tag {
        A,
        B,
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_and_tuples((x, y) in (0u32..10, 1usize..4), flag in any::<bool>()) {
            prop_assert!(x < 10);
            prop_assert!((1..4).contains(&y));
            prop_assert!(flag == flag);
        }

        #[test]
        fn vec_and_oneof(
            v in prop::collection::vec(prop_oneof![Just(Tag::A), Just(Tag::B)], 1..5),
            pick in prop::sample::select(vec![1u64, 2, 3]),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!((1..=3).contains(&pick));
        }

        #[test]
        fn maps_and_assume(n in 0u32..100, f in crate::num::f32::NORMAL) {
            prop_assume!(n != 50);
            let doubled = (0u32..10).prop_map(move |k| k + n).sample_check();
            prop_assert!(doubled >= n);
            prop_assert!(f.is_normal(), "{f} should be normal");
            prop_assert_eq!(n, n);
        }
    }

    trait SampleCheck: Strategy + Sized {
        fn sample_check(self) -> Self::Value {
            self.sample(&mut crate::TestRng::deterministic(0))
        }
    }
    impl<S: Strategy + Sized> SampleCheck for S {}

    proptest! {
        #[test]
        fn default_config_runs(b in prop::bool::ANY) {
            prop_assert!(b == b);
        }
    }
}
