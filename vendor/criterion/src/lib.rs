//! Offline stand-in for `criterion`.
//!
//! Implements the subset this workspace's benches use — `Criterion`,
//! `benchmark_group` returning a [`BenchmarkGroup`] parameterized on
//! [`measurement::WallTime`], the `sample_size` / `measurement_time` /
//! `warm_up_time` knobs, `bench_function` with a [`Bencher`], and the
//! `criterion_group!` / `criterion_main!` macros. Benchmarks really run:
//! each gets a warm-up, then `sample_size` timed samples whose per-sample
//! iteration count targets `measurement_time`, and min/mean/max per
//! iteration are printed. No statistics engine, no HTML reports.

use std::marker::PhantomData;
use std::time::{Duration, Instant};

/// Measurement markers, mirroring criterion's module of the same name.
pub mod measurement {
    /// Wall-clock measurement (the default and only one here).
    pub struct WallTime;
}

/// Prevents the optimizer from discarding a benchmark result.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_, measurement::WallTime> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
            _criterion: PhantomData,
            _measurement: PhantomData,
        }
    }
}

/// A group of benchmarks sharing sampling configuration.
pub struct BenchmarkGroup<'a, M> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    _criterion: PhantomData<&'a mut Criterion>,
    _measurement: PhantomData<M>,
}

impl<'a, M> BenchmarkGroup<'a, M> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the total time budget for the timed samples.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up duration before sampling starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one benchmark and prints its per-iteration timings.
    pub fn bench_function<S, F>(&mut self, id: S, mut f: F) -> &mut Self
    where
        S: AsRef<str>,
        F: FnMut(&mut Bencher),
    {
        let id = id.as_ref();
        // Warm-up: repeat single iterations until the budget elapses, and
        // learn the rough per-iteration cost while doing so.
        let warm_start = Instant::now();
        let mut per_iter = Duration::from_nanos(1);
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        loop {
            f(&mut b);
            if b.elapsed > Duration::ZERO {
                per_iter = b.elapsed / b.iters as u32;
            }
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }

        let per_sample = self.measurement_time / self.sample_size as u32;
        let iters = (per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

        let mut min = Duration::MAX;
        let mut max = Duration::ZERO;
        let mut total = Duration::ZERO;
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            let sample = b.elapsed / iters as u32;
            min = min.min(sample);
            max = max.max(sample);
            total += sample;
        }
        let mean = total / self.sample_size as u32;
        println!(
            "{}/{id}: [{:.3?} {:.3?} {:.3?}] ({} samples x {iters} iters)",
            self.name, min, mean, max, self.sample_size
        );
        self
    }

    /// Ends the group (report already printed per benchmark).
    pub fn finish(self) {}
}

/// Timing handle passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f`, keeping results live via `black_box`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Collects benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_closure() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(2);
        g.measurement_time(Duration::from_millis(10));
        g.warm_up_time(Duration::from_millis(1));
        let mut ran = 0u64;
        g.bench_function("count", |b| b.iter(|| ran += 1));
        g.finish();
        assert!(ran > 0);
    }
}
