//! Offline stand-in for `serde`.
//!
//! The build environment for this repository has no access to crates.io,
//! so the real `serde` cannot be fetched. This crate provides the small
//! slice of serde's surface the workspace actually uses — `Serialize` /
//! `Deserialize` traits driven by derive macros — over a simple
//! self-describing tree ([`Content`]) instead of serde's visitor-based
//! data model. `serde_json` (also vendored) renders and parses that tree.
//!
//! The API is intentionally compatible at the *use-site* level: code that
//! writes `#[derive(Serialize, Deserialize)]` and calls
//! `serde_json::to_string` / `from_str` compiles unchanged against the
//! real crates.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::HashMap;
use std::fmt;

/// A self-describing serialized value: the stand-in's data model.
#[derive(Clone, Debug, PartialEq)]
pub enum Content {
    /// JSON `null` / unit.
    Null,
    /// Boolean.
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Signed integer (only used for negative values).
    I64(i64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Content>),
    /// Key-value map with deterministic (insertion) order.
    Map(Vec<(String, Content)>),
}

impl Content {
    /// Looks up a key in a map value.
    pub fn get(&self, key: &str) -> Option<&Content> {
        match self {
            Content::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as f64, coercing integer representations.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Content::U64(v) => Some(v as f64),
            Content::I64(v) => Some(v as f64),
            Content::F64(v) => Some(v),
            _ => None,
        }
    }

    /// The value as u64 when integral.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Content::U64(v) => Some(v),
            Content::I64(v) if v >= 0 => Some(v as u64),
            Content::F64(v) if v >= 0.0 && v.fract() == 0.0 => Some(v as u64),
            _ => None,
        }
    }

    /// The value as i64 when integral.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Content::U64(v) => i64::try_from(v).ok(),
            Content::I64(v) => Some(v),
            Content::F64(v) if v.fract() == 0.0 => Some(v as i64),
            _ => None,
        }
    }
}

/// Deserialization error.
#[derive(Clone, Debug, PartialEq)]
pub struct DeError(pub String);

impl DeError {
    /// Builds an error from anything displayable.
    pub fn msg(m: impl fmt::Display) -> DeError {
        DeError(m.to_string())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves into the [`Content`] tree.
pub trait Serialize {
    /// Converts to the self-describing tree.
    fn ser(&self) -> Content;
}

/// Types that can be rebuilt from the [`Content`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds from the self-describing tree.
    fn de(content: &Content) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------- primitives

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn ser(&self) -> Content { Content::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn de(c: &Content) -> Result<Self, DeError> {
                let v = c.as_u64().ok_or_else(|| DeError::msg(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(v).map_err(|_| DeError::msg("integer out of range"))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn ser(&self) -> Content {
                let v = *self as i64;
                if v >= 0 { Content::U64(v as u64) } else { Content::I64(v) }
            }
        }
        impl Deserialize for $t {
            fn de(c: &Content) -> Result<Self, DeError> {
                let v = c.as_i64().ok_or_else(|| DeError::msg(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(v).map_err(|_| DeError::msg("integer out of range"))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn ser(&self) -> Content {
        Content::F64(*self)
    }
}
impl Deserialize for f64 {
    fn de(c: &Content) -> Result<Self, DeError> {
        c.as_f64().ok_or_else(|| DeError::msg("expected f64"))
    }
}

impl Serialize for f32 {
    fn ser(&self) -> Content {
        Content::F64(*self as f64)
    }
}
impl Deserialize for f32 {
    fn de(c: &Content) -> Result<Self, DeError> {
        c.as_f64()
            .map(|v| v as f32)
            .ok_or_else(|| DeError::msg("expected f32"))
    }
}

impl Serialize for bool {
    fn ser(&self) -> Content {
        Content::Bool(*self)
    }
}
impl Deserialize for bool {
    fn de(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Bool(b) => Ok(*b),
            _ => Err(DeError::msg("expected bool")),
        }
    }
}

impl Serialize for String {
    fn ser(&self) -> Content {
        Content::Str(self.clone())
    }
}
impl Deserialize for String {
    fn de(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            _ => Err(DeError::msg("expected string")),
        }
    }
}

impl Serialize for str {
    fn ser(&self) -> Content {
        Content::Str(self.to_string())
    }
}

// `&str` serializes through the `&T` blanket impl over `impl Serialize
// for str`.

// Static strings can only be rebuilt by leaking; acceptable for the
// simulator's config structs, which are created a handful of times.
impl Deserialize for &'static str {
    fn de(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            _ => Err(DeError::msg("expected string")),
        }
    }
}

impl Serialize for char {
    fn ser(&self) -> Content {
        Content::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn de(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(DeError::msg("expected single-char string")),
        }
    }
}

impl Serialize for () {
    fn ser(&self) -> Content {
        Content::Null
    }
}
impl Deserialize for () {
    fn de(_: &Content) -> Result<Self, DeError> {
        Ok(())
    }
}

// ---------------------------------------------------------------- containers

impl<T: Serialize> Serialize for Option<T> {
    fn ser(&self) -> Content {
        match self {
            Some(v) => v.ser(),
            None => Content::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn de(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(None),
            other => T::de(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn ser(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::ser).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn de(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Seq(items) => items.iter().map(T::de).collect(),
            _ => Err(DeError::msg("expected sequence")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn ser(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::ser).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn ser(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::ser).collect())
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn de(c: &Content) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::de(c)?;
        items
            .try_into()
            .map_err(|_| DeError::msg("sequence length does not match array"))
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn ser(&self) -> Content {
        (**self).ser()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn de(c: &Content) -> Result<Self, DeError> {
        T::de(c).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn ser(&self) -> Content {
        (**self).ser()
    }
}
impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn de(c: &Content) -> Result<Self, DeError> {
        T::de(c).map(std::sync::Arc::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn ser(&self) -> Content {
        (**self).ser()
    }
}

/// Deterministic ordering over contents, used to sort hash-map entries
/// before serialization (rank by variant, then by value).
pub fn content_cmp(a: &Content, b: &Content) -> std::cmp::Ordering {
    fn rank(c: &Content) -> u8 {
        match c {
            Content::Null => 0,
            Content::Bool(_) => 1,
            Content::U64(_) | Content::I64(_) | Content::F64(_) => 2,
            Content::Str(_) => 3,
            Content::Seq(_) => 4,
            Content::Map(_) => 5,
        }
    }
    use std::cmp::Ordering;
    match (a, b) {
        (Content::Bool(x), Content::Bool(y)) => x.cmp(y),
        (Content::Str(x), Content::Str(y)) => x.cmp(y),
        (x, y) if rank(x) == 2 && rank(y) == 2 => {
            let xf = x.as_f64().unwrap_or(f64::NAN);
            let yf = y.as_f64().unwrap_or(f64::NAN);
            xf.total_cmp(&yf)
        }
        (Content::Seq(x), Content::Seq(y)) => {
            for (xi, yi) in x.iter().zip(y.iter()) {
                let ord = content_cmp(xi, yi);
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            x.len().cmp(&y.len())
        }
        (x, y) => rank(x).cmp(&rank(y)),
    }
}

// Maps serialize as JSON objects when every key is a string, and as
// `[[key, value], ...]` pair sequences otherwise (e.g. integer-newtype
// keys). Entries are sorted for deterministic output.
impl<K: Serialize + Eq + std::hash::Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn ser(&self) -> Content {
        let mut entries: Vec<(Content, Content)> =
            self.iter().map(|(k, v)| (k.ser(), v.ser())).collect();
        entries.sort_by(|x, y| content_cmp(&x.0, &y.0));
        if entries.iter().all(|(k, _)| matches!(k, Content::Str(_))) {
            Content::Map(
                entries
                    .into_iter()
                    .map(|(k, v)| match k {
                        Content::Str(s) => (s, v),
                        _ => unreachable!("checked all keys are strings"),
                    })
                    .collect(),
            )
        } else {
            Content::Seq(
                entries
                    .into_iter()
                    .map(|(k, v)| Content::Seq(vec![k, v]))
                    .collect(),
            )
        }
    }
}
impl<K: Deserialize + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn de(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::de(&Content::Str(k.clone()))?, V::de(v)?)))
                .collect(),
            Content::Seq(items) => items
                .iter()
                .map(|item| match item {
                    Content::Seq(pair) if pair.len() == 2 => {
                        Ok((K::de(&pair[0])?, V::de(&pair[1])?))
                    }
                    _ => Err(DeError::msg("expected [key, value] pair")),
                })
                .collect(),
            _ => Err(DeError::msg("expected map")),
        }
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn ser(&self) -> Content {
        Content::Map(self.iter().map(|(k, v)| (k.clone(), v.ser())).collect())
    }
}
impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn de(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::de(v)?)))
                .collect(),
            _ => Err(DeError::msg("expected map")),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn ser(&self) -> Content {
                Content::Seq(vec![$(self.$idx.ser()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn de(c: &Content) -> Result<Self, DeError> {
                match c {
                    Content::Seq(items) => {
                        let mut it = items.iter();
                        Ok(($(
                            $name::de(it.next().ok_or_else(|| DeError::msg("tuple too short"))?)?,
                        )+))
                    }
                    _ => Err(DeError::msg("expected tuple sequence")),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

impl Serialize for Content {
    fn ser(&self) -> Content {
        self.clone()
    }
}
impl Deserialize for Content {
    fn de(c: &Content) -> Result<Self, DeError> {
        Ok(c.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::de(&42u32.ser()).unwrap(), 42);
        assert_eq!(i64::de(&(-7i64).ser()).unwrap(), -7);
        assert_eq!(f64::de(&1.5f64.ser()).unwrap(), 1.5);
        assert!(bool::de(&true.ser()).unwrap());
        assert_eq!(String::de(&"hi".to_string().ser()).unwrap(), "hi");
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::de(&v.ser()).unwrap(), v);
        let t = (1u32, 2.5f64, "x".to_string());
        assert_eq!(<(u32, f64, String)>::de(&t.ser()).unwrap(), t);
        assert_eq!(Option::<u32>::de(&None::<u32>.ser()).unwrap(), None);
        assert_eq!(Option::<u32>::de(&Some(3u32).ser()).unwrap(), Some(3));
    }
}
