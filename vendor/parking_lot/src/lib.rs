//! Offline stand-in for `parking_lot`.
//!
//! Wraps the std synchronization primitives and strips poisoning, matching
//! parking_lot's non-poisoning API: `lock()`/`read()`/`write()` return
//! guards directly instead of `Result`s.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion lock without poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// Reader-writer lock without poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
