//! Offline stand-in for `rand` 0.8.
//!
//! Provides the exact surface this workspace uses: [`rngs::SmallRng`]
//! seeded via [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over
//! integer and float ranges, [`Rng::gen_bool`], and
//! [`seq::SliceRandom::shuffle`]. The generator is xoshiro256++ (the same
//! family real `rand` uses for `SmallRng` on 64-bit targets), seeded
//! through SplitMix64 — deterministic for a given seed, which is all the
//! simulation requires. Stream values differ from the real crate's, which
//! only shifts which pseudo-random draws tests see.

use std::ops::Range;

/// Low-level generator interface.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from small seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods (blanket-implemented for every generator).
pub trait Rng: RngCore {
    /// Uniform sample from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

fn unit_f64(bits: u64) -> f64 {
    // 53 high bits → [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that can produce uniform samples.
pub trait SampleRange<T> {
    /// Draws one sample.
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64())
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample<R: RngCore>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64()) as f32
    }
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small fast generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            // SplitMix64 expansion, as real rand does for small seeds.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Slice sampling helpers.
pub mod seq {
    use super::{Rng, SampleRange};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// A uniformly random element, `None` when empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (0..i + 1).sample(rng);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(0..self.len()).sample(rng)])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(0.5..1.5);
            assert!((0.5..1.5).contains(&f));
            let g: f32 = rng.gen_range(-0.4..0.4f32);
            assert!((-0.4..0.4).contains(&g));
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should move something");
    }

    #[test]
    fn floats_cover_the_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..1000 {
            let v = rng.gen_range(0.0..1.0);
            lo |= v < 0.1;
            hi |= v > 0.9;
        }
        assert!(lo && hi);
    }
}
