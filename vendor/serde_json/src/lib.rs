//! Offline stand-in for `serde_json`.
//!
//! Renders and parses the vendored `serde` stand-in's [`Content`] tree as
//! JSON. Covers the workspace's usage: `to_string`, `to_string_pretty`,
//! `from_str`, `to_writer`, [`Value`] and the [`json!`] macro.
//!
//! Output is deterministic: map entries keep insertion order and floats
//! print via Rust's shortest-roundtrip formatting, so identical inputs
//! yield byte-identical JSON — a property the trace exporter's tests rely
//! on.

use std::fmt;

pub use serde::Content as Value;
use serde::{Content, DeError, Deserialize, Serialize};

/// Serialization/deserialization error.
#[derive(Clone, Debug, PartialEq)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Error {
        Error(e.0)
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_content(&mut out, &value.ser(), None, 0);
    Ok(out)
}

/// Serializes a value to human-readable, two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_content(&mut out, &value.ser(), Some(2), 0);
    Ok(out)
}

/// Serializes a value as compact JSON into a writer.
pub fn to_writer<W: std::io::Write, T: Serialize + ?Sized>(mut w: W, value: &T) -> Result<()> {
    let s = to_string(value)?;
    w.write_all(s.as_bytes()).map_err(|e| Error(e.to_string()))
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.ser())
}

/// Rebuilds a typed value from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T> {
    T::de(value).map_err(Error::from)
}

/// Parses JSON text into a typed value.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse_value(s)?;
    T::de(&value).map_err(Error::from)
}

// ------------------------------------------------------------------ writing

fn write_content(out: &mut String, c: &Content, indent: Option<usize>, depth: usize) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => write_f64(out, *v),
        Content::Str(s) => write_escaped(out, s),
        Content::Seq(items) => {
            write_delimited(out, items.iter(), '[', ']', indent, depth, |o, v, d| {
                write_content(o, v, indent, d)
            })
        }
        Content::Map(entries) => write_delimited(
            out,
            entries.iter(),
            '{',
            '}',
            indent,
            depth,
            |o, (k, v), d| {
                write_escaped(o, k);
                o.push(':');
                if indent.is_some() {
                    o.push(' ');
                }
                write_content(o, v, indent, d);
            },
        ),
    }
}

fn write_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        // JSON has no inf/NaN; serde_json writes null.
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 1e15 {
        // Match serde_json's "1.0"-style rendering of integral floats.
        out.push_str(&format!("{v:.1}"));
    } else {
        out.push_str(&format!("{v}"));
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_delimited<I, T>(
    out: &mut String,
    items: I,
    open: char,
    close: char,
    indent: Option<usize>,
    depth: usize,
    mut write_item: impl FnMut(&mut String, T, usize),
) where
    I: ExactSizeIterator<Item = T>,
{
    out.push(open);
    let n = items.len();
    for (i, item) in items.enumerate() {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        write_item(out, item, depth + 1);
        if i + 1 < n {
            out.push(',');
        }
    }
    if n > 0 {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * depth));
        }
    }
    out.push(close);
}

// ------------------------------------------------------------------ parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Content> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Content> {
        match self.peek() {
            Some(b'n') => self.keyword("null", Content::Null),
            Some(b't') => self.keyword("true", Content::Bool(true)),
            Some(b'f') => self.keyword("false", Content::Bool(false)),
            Some(b'"') => Ok(Content::Str(self.string()?)),
            Some(b'[') => self.seq(),
            Some(b'{') => self.map(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error(format!("unexpected {other:?} at byte {}", self.pos))),
        }
    }

    fn keyword(&mut self, kw: &str, value: Content) -> Result<Content> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| Error(e.to_string()))?,
                                16,
                            )
                            .map_err(|e| Error(e.to_string()))?;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u escape".into()))?,
                            );
                            self.pos += 4;
                        }
                        other => return Err(Error(format!("bad escape {other:?}"))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one full UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|e| Error(e.to_string()))?;
                    let ch = rest.chars().next().unwrap();
                    s.push(ch);
                    self.pos += ch.len_utf8();
                }
                None => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn number(&mut self) -> Result<Content> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Content::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|e| Error(format!("bad number `{text}`: {e}")))
    }

    fn seq(&mut self) -> Result<Content> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                other => return Err(Error(format!("expected , or ] found {other:?}"))),
            }
        }
    }

    fn map(&mut self) -> Result<Content> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                other => return Err(Error(format!("expected , or }} found {other:?}"))),
            }
        }
    }
}

/// Builds a [`Value`] from JSON-like syntax. Supports object literals with
/// string keys and expression values, array literals, `null`, and bare
/// serializable expressions.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $value:expr),* $(,)? }) => {
        $crate::Value::Map(::std::vec![
            $((::std::string::String::from($key), ::serde::Serialize::ser(&$value))),*
        ])
    };
    ([ $($value:expr),* $(,)? ]) => {
        $crate::Value::Seq(::std::vec![
            $(::serde::Serialize::ser(&$value)),*
        ])
    };
    ($other:expr) => { ::serde::Serialize::ser(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_value() {
        let v = json!({
            "a": 1u32,
            "b": [1.5f64, 2.0],
            "c": "hi",
            "d": true,
        });
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(v, back);
        assert_eq!(s, r#"{"a":1,"b":[1.5,2.0],"c":"hi","d":true}"#);
    }

    #[test]
    fn pretty_is_indented() {
        let v = json!({ "x": 1u32 });
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(s, "{\n  \"x\": 1\n}");
    }

    #[test]
    fn parses_nested() {
        let v: Value = from_str(r#"{"k": [1, -2, 3.5, {"n": null}]}"#).unwrap();
        let seq = v.get("k").unwrap();
        match seq {
            Value::Seq(items) => {
                assert_eq!(items[0], Value::U64(1));
                assert_eq!(items[1], Value::I64(-2));
                assert_eq!(items[2], Value::F64(3.5));
                assert_eq!(items[3].get("n"), Some(&Value::Null));
            }
            _ => panic!("expected seq"),
        }
    }

    #[test]
    fn escapes_strings() {
        let s = to_string(&"a\"b\\c\nd").unwrap();
        assert_eq!(s, r#""a\"b\\c\nd""#);
        let back: String = from_str(&s).unwrap();
        assert_eq!(back, "a\"b\\c\nd");
    }
}
