//! Offline stand-in for `crossbeam`.
//!
//! Implements the scoped-thread API (`crossbeam::scope`, `Scope::spawn`,
//! `ScopedJoinHandle::join`) on top of `std::thread::scope`. Matches the
//! crossbeam 0.8 signatures: `scope` returns a `Result`, spawn closures
//! receive a `&Scope` argument, and `join` returns the thread result.

use std::any::Any;

/// Error payload from a panicked scope (never produced by this stand-in:
/// `std::thread::scope` propagates panics instead).
pub type ScopeError = Box<dyn Any + Send + 'static>;

/// A scope handle passed to [`scope`] closures; spawn borrows non-`'static`
/// data from the enclosing environment.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Clone for Scope<'scope, 'env> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

/// Handle to a thread spawned inside a [`scope`].
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Waits for the thread and returns its result, or the panic payload.
    pub fn join(self) -> Result<T, ScopeError> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a thread bound to this scope. As in crossbeam, the closure
    /// receives the scope so it can spawn nested work.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let scope = *self;
        ScopedJoinHandle {
            inner: self.inner.spawn(move || f(&scope)),
        }
    }
}

/// Runs `f` with a scope whose spawned threads all join before return.
///
/// # Errors
///
/// Crossbeam reports panicking children here; with `std::thread::scope`
/// underneath, a panicking child re-panics on join instead, so this
/// stand-in always returns `Ok`.
pub fn scope<'env, F, R>(f: F) -> Result<R, ScopeError>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u32, 2, 3, 4];
        let total: u32 = super::scope(|scope| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| scope.spawn(move |_| c.iter().sum::<u32>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_receives_scope() {
        let v = super::scope(|scope| {
            scope
                .spawn(|inner| inner.spawn(|_| 7u32).join().unwrap())
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(v, 7);
    }
}
