//! Derive macros for the vendored `serde` stand-in.
//!
//! Hand-rolled over `proc_macro` token trees (the build environment has no
//! crates.io access, so `syn`/`quote` are unavailable). Supports the shapes
//! this workspace actually derives on:
//!
//! * structs with named fields, tuple structs (newtype included), unit
//!   structs;
//! * enums with unit, tuple and struct variants (externally tagged, like
//!   real serde's default representation).
//!
//! Generics are intentionally unsupported — no serialized type in the
//! workspace is generic, and a clear panic beats silently-wrong codegen.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derives `serde::Serialize` (stand-in data-model version).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => serialize_struct(name, fields),
        Item::Enum { name, variants } => serialize_enum(name, variants),
    };
    code.parse().expect("serialize codegen parses")
}

/// Derives `serde::Deserialize` (stand-in data-model version).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => deserialize_struct(name, fields),
        Item::Enum { name, variants } => deserialize_enum(name, variants),
    };
    code.parse().expect("deserialize codegen parses")
}

// ------------------------------------------------------------------ parsing

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attributes(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);
    let kind = expect_ident(&tokens, &mut i);
    let name = expect_ident(&tokens, &mut i);
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde stand-in derive does not support generic type `{name}`");
    }
    match kind.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                _ => Fields::Unit,
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("expected enum body, found {other:?}"),
            };
            Item::Enum {
                name,
                variants: parse_variants(body),
            }
        }
        other => panic!("derive supports struct/enum, found `{other}`"),
    }
}

fn skip_attributes(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match (tokens.get(*i), tokens.get(*i + 1)) {
            (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g)))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                *i += 2;
            }
            _ => break,
        }
    }
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("expected identifier, found {other:?}"),
    }
}

/// Advances past a type (or expression) until a top-level comma, tracking
/// `<...>` nesting (angle brackets are plain puncts, not groups).
fn skip_until_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(tok) = tokens.get(*i) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        fields.push(expect_ident(&tokens, &mut i));
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("expected `:` after field name, found {other:?}"),
        }
        skip_until_comma(&tokens, &mut i);
        i += 1; // past the comma (or end)
    }
    fields
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    let mut count = 0;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        count += 1;
        skip_until_comma(&tokens, &mut i);
        i += 1;
    }
    count
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i);
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant (`= expr`) and the separating comma.
        skip_until_comma(&tokens, &mut i);
        i += 1;
        variants.push(Variant { name, fields });
    }
    variants
}

// ------------------------------------------------------------------ codegen

fn serialize_struct(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Named(names) => {
            let entries: Vec<String> = names
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), ::serde::Serialize::ser(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Content::Map(::std::vec![{}])", entries.join(", "))
        }
        Fields::Tuple(1) => "::serde::Serialize::ser(&self.0)".to_string(),
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Serialize::ser(&self.{k})"))
                .collect();
            format!("::serde::Content::Seq(::std::vec![{}])", items.join(", "))
        }
        Fields::Unit => "::serde::Content::Null".to_string(),
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n  fn ser(&self) -> ::serde::Content {{ {body} }}\n}}\n"
    )
}

fn deserialize_struct(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Named(names) => {
            let inits: Vec<String> = names
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::de(__c.get(\"{f}\").ok_or_else(|| \
                         ::serde::DeError::msg(\"missing field `{f}` in {name}\"))?)?"
                    )
                })
                .collect();
            format!(
                "match __c {{\n  ::serde::Content::Map(_) => ::std::result::Result::Ok({name} {{ {} }}),\n  \
                 _ => ::std::result::Result::Err(::serde::DeError::msg(\"expected map for {name}\")),\n}}",
                inits.join(", ")
            )
        }
        Fields::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::de(__c)?))")
        }
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Deserialize::de(&__items[{k}])?"))
                .collect();
            format!(
                "match __c {{\n  ::serde::Content::Seq(__items) if __items.len() == {n} => \
                 ::std::result::Result::Ok({name}({})),\n  \
                 _ => ::std::result::Result::Err(::serde::DeError::msg(\"expected {n}-element sequence for {name}\")),\n}}",
                items.join(", ")
            )
        }
        Fields::Unit => format!("::std::result::Result::Ok({name})"),
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n  fn de(__c: &::serde::Content) -> \
         ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n}}\n"
    )
}

fn serialize_enum(name: &str, variants: &[Variant]) -> String {
    let arms: Vec<String> = variants
        .iter()
        .map(|v| {
            let vn = &v.name;
            match &v.fields {
                Fields::Unit => format!(
                    "{name}::{vn} => ::serde::Content::Str(::std::string::String::from(\"{vn}\"))"
                ),
                Fields::Tuple(1) => format!(
                    "{name}::{vn}(__f0) => ::serde::Content::Map(::std::vec![\
                     (::std::string::String::from(\"{vn}\"), ::serde::Serialize::ser(__f0))])"
                ),
                Fields::Tuple(n) => {
                    let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                    let items: Vec<String> = (0..*n)
                        .map(|k| format!("::serde::Serialize::ser(__f{k})"))
                        .collect();
                    format!(
                        "{name}::{vn}({}) => ::serde::Content::Map(::std::vec![\
                         (::std::string::String::from(\"{vn}\"), \
                         ::serde::Content::Seq(::std::vec![{}]))])",
                        binds.join(", "),
                        items.join(", ")
                    )
                }
                Fields::Named(fields) => {
                    let binds = fields.join(", ");
                    let entries: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "(::std::string::String::from(\"{f}\"), ::serde::Serialize::ser({f}))"
                            )
                        })
                        .collect();
                    format!(
                        "{name}::{vn} {{ {binds} }} => ::serde::Content::Map(::std::vec![\
                         (::std::string::String::from(\"{vn}\"), \
                         ::serde::Content::Map(::std::vec![{}]))])",
                        entries.join(", ")
                    )
                }
            }
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n  fn ser(&self) -> ::serde::Content {{\n    \
         match self {{ {} }}\n  }}\n}}\n",
        arms.join(",\n")
    )
}

fn deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.fields, Fields::Unit))
        .map(|v| {
            format!(
                "\"{vn}\" => ::std::result::Result::Ok({name}::{vn})",
                vn = v.name
            )
        })
        .collect();
    let data_arms: Vec<String> = variants
        .iter()
        .filter_map(|v| {
            let vn = &v.name;
            match &v.fields {
                Fields::Unit => None,
                Fields::Tuple(1) => Some(format!(
                    "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::de(__v)?))"
                )),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|k| format!("::serde::Deserialize::de(&__items[{k}])?"))
                        .collect();
                    Some(format!(
                        "\"{vn}\" => match __v {{\n  ::serde::Content::Seq(__items) if __items.len() == {n} => \
                         ::std::result::Result::Ok({name}::{vn}({})),\n  \
                         _ => ::std::result::Result::Err(::serde::DeError::msg(\"bad payload for {name}::{vn}\")),\n}}",
                        items.join(", ")
                    ))
                }
                Fields::Named(fields) => {
                    let inits: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::de(__v.get(\"{f}\").ok_or_else(|| \
                                 ::serde::DeError::msg(\"missing field `{f}` in {name}::{vn}\"))?)?"
                            )
                        })
                        .collect();
                    Some(format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn} {{ {} }})",
                        inits.join(", ")
                    ))
                }
            }
        })
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{\n  fn de(__c: &::serde::Content) -> \
         ::std::result::Result<Self, ::serde::DeError> {{\n    match __c {{\n      \
         ::serde::Content::Str(__s) => match __s.as_str() {{\n        {unit}\n        _ => \
         ::std::result::Result::Err(::serde::DeError::msg(\"unknown variant of {name}\")),\n      }},\n      \
         ::serde::Content::Map(__entries) if __entries.len() == 1 => {{\n        \
         let (__k, __v) = &__entries[0];\n        match __k.as_str() {{\n          {data}\n          _ => \
         ::std::result::Result::Err(::serde::DeError::msg(\"unknown variant of {name}\")),\n        }}\n      }},\n      \
         _ => ::std::result::Result::Err(::serde::DeError::msg(\"expected variant for {name}\")),\n    }}\n  }}\n}}\n",
        unit = if unit_arms.is_empty() {
            String::new()
        } else {
            format!("{},", unit_arms.join(",\n"))
        },
        data = if data_arms.is_empty() {
            String::new()
        } else {
            format!("{},", data_arms.join(",\n"))
        },
    )
}
